// Trace explorer: run an attach, an inter-CPF handover, and a service
// request that a CPF crash interrupts — with full procedure tracing on —
// then dump the hop-by-hop timelines as JSON (obs/trace.hpp).
//
// The crash-crossing procedure is the interesting one: its timeline shows
// the request reaching the doomed CPF, the crash, the CTA replaying the
// logged messages onto a backup, and the response returning — every hop
// stamped with sim-time, class (propagation / queueing / service /
// serialization) and node, and the decomposition tiling the PCT exactly.
#include <cstdio>

#include "core/cost_model.hpp"
#include "core/system.hpp"
#include "obs/trace.hpp"

using namespace neutrino;

int main() {
  sim::EventLoop loop;
  core::Metrics metrics;
  core::FixedCostModel costs(SimTime::microseconds(10));
  core::TopologyConfig topo;
  topo.l1_per_l2 = 2;  // two regions so the handover crosses CPFs
  core::System system(loop, core::neutrino_policy(), topo, {}, costs,
                      metrics);

  obs::TracerConfig tc;
  tc.record_events = true;  // keep full hop timelines
  tc.keep_all = true;
  obs::ProcTracer tracer(tc, &metrics.registry);
  system.attach_tracer(tracer);

  // A plain attach and an inter-CPF handover, for comparison timelines.
  const UeId attacher{1};
  system.frontend().start_procedure(attacher, core::ProcedureType::kAttach);
  const UeId walker{2};
  system.frontend().preattach(walker, 0);
  loop.schedule_at(SimTime::milliseconds(1), [&] {
    system.frontend().start_procedure(walker, core::ProcedureType::kHandover,
                                      /*target_region=*/1);
  });

  // The crash crossing: service request in flight when its CPF dies.
  const UeId victim_ue{7};
  system.frontend().preattach(victim_ue, 0);
  loop.schedule_at(SimTime::milliseconds(2), [&] {
    system.frontend().start_procedure(victim_ue,
                                      core::ProcedureType::kServiceRequest);
  });
  const CpfId victim_cpf = system.primary_cpf_for(victim_ue, 0);
  loop.schedule_at(SimTime::milliseconds(2) + SimTime::microseconds(25),
                   [&] { system.crash_cpf(victim_cpf); });

  loop.run_until(SimTime::seconds(10));

  std::printf("# traced %llu procedures (%zu hit a failure path)\n",
              static_cast<unsigned long long>(tracer.spans_completed()),
              tracer.failed().size());
  std::printf("# timeline of the procedure that crossed CPF %u's crash:\n",
              victim_cpf.value());
  for (const obs::Span& s : tracer.all()) {
    if (s.ue == victim_ue) {
      std::printf("%s", s.to_json().dump(2).c_str());
      break;
    }
  }
  std::printf("# full dump (slowest + failed spans):\n");
  std::printf("%s", tracer.dump_json().dump(2).c_str());
  return 0;
}
