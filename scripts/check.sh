#!/usr/bin/env bash
# Full local gate: sanitized build, tests, bench smoke runs, and JSON
# report validation. Run from the repo root:
#
#   scripts/check.sh            # everything (Debug + ASan/UBSan)
#   FAST=1 scripts/check.sh     # reuse an existing build/ instead
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${FAST:-0}" == "1" ]]; then
  BUILD=build
  EXCLUDE=()
  cmake -B "$BUILD" -S . >/dev/null
else
  BUILD=build-asan
  # Wall-clock-anchored calibration tests measure the *real* codecs;
  # sanitizer instrumentation skews the measurement, not the code under
  # test, so they only run in the un-instrumented configuration.
  EXCLUDE=(-E "MeasuredCostModel.AttachBudgetAnchored")
  cmake -B "$BUILD" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    >/dev/null
fi
echo "== build ($BUILD)"
cmake --build "$BUILD" -j

echo "== ctest"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" "${EXCLUDE[@]}"

echo "== bench smoke + report validation"
REPORTS=()
for bench in fig07_service_request_pct fig08_attach_pct_uniform \
             fig_saturation; do
  out="$BUILD/bench/$bench.smoke-report.json"
  "$BUILD/bench/$bench" --smoke --report="$out" >/dev/null
  REPORTS+=("$out")
done
python3 scripts/validate_report.py "${REPORTS[@]}"

# Extended structure-aware codec fuzz under the sanitized build: ctest
# already ran the suite at its default iteration count; this pass widens
# the corpus so memory bugs in the decoders meet ASan, not production.
echo "== codec fuzz (extended, $BUILD)"
NEUTRINO_FUZZ_ITERS=1200 "$BUILD/tests/codec_fuzz_test" >/dev/null

echo "== trace demo"
"$BUILD/examples/trace_explore" >/dev/null

# Chaos smoke under the sanitized build: a handful of randomized failure
# schedules with the online invariant checker armed. Seed count is small
# here (sanitizers are ~10x); the release stage below runs the wide sweep.
echo "== chaos smoke ($BUILD)"
cmake --build "$BUILD" -j --target chaos_campaign
out="$BUILD/bench/chaos_campaign.smoke-report.json"
"$BUILD/bench/chaos_campaign" --smoke --seeds=10 \
  --repro-dir="$BUILD/bench" --report="$out" >/dev/null
python3 scripts/validate_report.py "$out"

# ThreadSanitizer pass over the multi-threaded sharded runtime (and the
# event-loop/determinism suites it builds on). TSan and ASan cannot share
# a build; this is a separate configuration so both always run.
if [[ "${FAST:-0}" != "1" ]]; then
  echo "== build-tsan + parallel runtime tests"
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all" \
    >/dev/null
  cmake --build build-tsan -j \
    --target sim_core_test parallel_runtime_test parallel_determinism_test
  for t in sim_core_test parallel_runtime_test parallel_determinism_test; do
    echo "-- tsan: $t"
    "build-tsan/tests/$t"
  done
fi

# Throughput gate: the 100k-UE storm must complete every procedure with
# zero RYW violations (scale_throughput exits non-zero otherwise), at
# release optimization levels — sanitized builds measure the sanitizer.
# The sharded rows re-run the storm over the partitioned topology on two
# worker threads, exercising the cross-shard path at full optimization.
echo "== release build + scale smoke (build-release)"
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG" >/dev/null
cmake --build build-release -j --target scale_throughput sim_core_gbench
out=build-release/bench/scale_throughput.smoke-report.json
build-release/bench/scale_throughput --smoke --threads=1,2 --shards=2 \
  --report="$out"
python3 scripts/validate_report.py "$out"
python3 scripts/summarize_bench.py "$out"

# Deep telemetry (DESIGN.md §15): the same storm with windowed series,
# SLO burn tracking and the phase profiler armed, the last sharded row
# exporting a Perfetto trace. validate_report.py checks the v3 report
# sections and the trace-event JSON.
echo "== telemetry sections + trace export (build-release)"
tout=build-release/bench/scale_throughput.telemetry-report.json
trace=build-release/bench/scale_throughput.trace.json
build-release/bench/scale_throughput --smoke --threads=1,2 --shards=2 \
  --telemetry --trace-out="$trace" --report="$tout" >/dev/null
python3 scripts/validate_report.py "$tout" "$trace"
python3 - "$tout" <<'PY'
import json, sys
rows = json.load(open(sys.argv[1]))["rows"]
for section in ("timeseries", "slo", "profiler"):
    assert any(section in r for r in rows), f"no {section} section in any row"
print("telemetry sections present:", sys.argv[1])
PY

# Telemetry overhead gate: enabled (--telemetry) must cost <=10% over
# disabled — the default-off path stays effectively free. Wall-clock
# on a shared runner is noisy in one direction only (co-tenant
# contention inflates samples), so the gate compares the MINIMUM wall
# per side over >=3 interleaved runs — the same estimator as the
# shard-sync gate below. The disabled best-two drift is a loose
# sanity bound (<=10%), not the old 2% reproducibility bar: one
# extra-quiet sample lowers the min and *widens* the best-two gap, so
# a tight drift bar is anti-robust exactly when the estimate improves.
echo "== telemetry overhead gate (build-release)"
OFF_OUTS=()
ON_OUTS=()
tele_ok=0
for batch in 1 2 3; do
  for attempt in 1 2 3; do
    off="build-release/bench/scale-overhead-off$batch$attempt.json"
    on="build-release/bench/scale-overhead-on$batch$attempt.json"
    build-release/bench/scale_throughput --smoke --report="$off" >/dev/null
    build-release/bench/scale_throughput --smoke --telemetry \
      --report="$on" >/dev/null
    OFF_OUTS+=("$off")
    ON_OUTS+=("$on")
  done
  if python3 - "${OFF_OUTS[@]}" -- "${ON_OUTS[@]}" <<'PY'
import json, sys
def wall(path):
    return sum(r["wall_seconds"] for r in json.load(open(path))["rows"])
sep = sys.argv.index("--")
offs = sorted(wall(p) for p in sys.argv[1:sep])
ons = sorted(wall(p) for p in sys.argv[sep + 1:])
drift = (offs[1] - offs[0]) / offs[0]
overhead = (ons[0] - offs[0]) / offs[0]
print(f"telemetry overhead: disabled best-two drift {drift:.1%}, "
      f"enabled {overhead:+.1%} (min over {len(offs)} off / {len(ons)} on "
      f"runs; gate: 10% / 10%)")
sys.exit(0 if drift <= 0.10 and overhead <= 0.10 else 1)
PY
  then
    tele_ok=1
    break
  fi
  [[ "$batch" == 3 ]] || echo "-- batch $batch over the gate; pooling another batch"
done
[[ "$tele_ok" == 1 ]] || { echo "telemetry overhead gate failed"; exit 1; }

# Shard-sync overhead gate (DESIGN.md §16): the storm partitioned over 8
# shards on ONE worker thread must cost <=15% over the same-topology
# legacy single-thread run — this prices the window machinery itself
# (scheduling scans, barriers skipped at threads=1, boundary drains),
# not parallel speedup. Each report carries its in-process ratio
# (config.sync_overhead_threads1, from the "sharded_baseline": true row);
# the gate compares the MINIMUM wall per side over 3 fresh runs, because
# co-tenant CPU contention only ever inflates a sample — the min is the
# robust estimator of the true cost on a shared runner.
echo "== shard-sync overhead gate (build-release)"
SYNC_OUTS=()
sync_ok=0
for batch in 1 2 3; do
  for attempt in 1 2 3; do
    out="build-release/bench/scale-sync-overhead$batch$attempt.json"
    build-release/bench/scale_throughput --smoke --threads=1 --shards=8 \
      --report="$out" >/dev/null
    SYNC_OUTS+=("$out")
  done
  if python3 - "${SYNC_OUTS[@]}" <<'PY'
import json, sys
legacy, sharded = [], []
for path in sys.argv[1:]:
    text = open(path).read()
    doc = json.loads(text[text.find("{"):])
    for r in doc["rows"]:
        if r.get("sharded_baseline"):
            legacy.append(r["wall_seconds"])
        elif (r.get("mode") == "sharded" and r.get("threads") == 1
              and r.get("adaptive_lookahead")):
            sharded.append(r["wall_seconds"])
    print(f"  {path}: in-process ratio "
          f"{doc['config']['sync_overhead_threads1']:+.1%}")
assert legacy and sharded, "gate rows missing from the reports"
overhead = min(sharded) / min(legacy) - 1
print(f"shard-sync overhead at threads=1: {overhead:+.1%} "
      f"(min over {len(sharded)} runs per side; gate: 15%)")
sys.exit(0 if overhead <= 0.15 else 1)
PY
  then
    sync_ok=1
    break
  fi
  # A busy co-tenant window can inflate a whole batch, sharded side
  # hardest (it touches more memory). Pool another batch of samples —
  # the minima only ever improve — before calling it a real regression.
  [[ "$batch" == 3 ]] || echo "-- batch $batch over the gate; pooling another batch"
done
[[ "$sync_ok" == 1 ]] || { echo "shard-sync overhead gate failed"; exit 1; }

# Saturation sweep at release optimization: the full offered-load knee
# sweep with overload control armed; validate_report.py enforces the
# bounded-depth / zero-RYW / >=99%-completion acceptance surface.
echo "== saturation sweep (build-release)"
cmake --build build-release -j --target fig_saturation
out=build-release/bench/fig_saturation.report.json
trace=build-release/bench/fig_saturation.trace.json
build-release/bench/fig_saturation --telemetry --trace-out="$trace" \
  --report="$out" >/dev/null
python3 scripts/validate_report.py "$out" "$trace"

# Traffic scenarios (DESIGN.md §17): the per-scenario saturation sweep
# with its calibrated acceptance gate (fig_scenarios exits non-zero when
# any scenario misses zero-RYW / >=99%-completion at its knee), then every
# named scenario through scale_throughput's legacy AND sharded runtimes
# with a bit-identical cross-thread-count comparison, and finally a chaos
# campaign with a scenario overlaid on the generated failure schedules.
echo "== traffic scenarios (build-release)"
cmake --build build-release -j --target fig_scenarios scale_throughput \
  chaos_campaign
out=build-release/bench/fig_scenarios.smoke-report.json
build-release/bench/fig_scenarios --smoke --report="$out" >/dev/null
python3 scripts/validate_report.py "$out"
python3 scripts/summarize_bench.py "$out"
rm -f build-release/bench/scale-scenario-*.json
for sc in legacy-uniform legacy-bursty commuter-morning stadium-egress \
          iot-firmware-push region-blackout-reconnect; do
  out="build-release/bench/scale-scenario-$sc.json"
  build-release/bench/scale_throughput --smoke --ues=2000 --scenario="$sc" \
    --threads=1,2 --shards=2 --report="$out" >/dev/null
  python3 scripts/validate_report.py "$out"
done
python3 - build-release/bench/scale-scenario-*.json <<'PY'
import json, sys
# Bit-identical outcomes across worker threads for every scenario: the
# threads=1 and threads=2 sharded rows must agree on everything the run
# computes (counters, windows, cross-shard traffic, per-shard events).
for path in sys.argv[1:]:
    text = open(path).read()
    doc = json.loads(text[text.find("{"):])
    sharded = {r["threads"]: r for r in doc["rows"]
               if r.get("mode") == "sharded"
               and r.get("adaptive_lookahead", True)}
    a, b = sharded[1], sharded[2]
    for k in ("counters", "windows", "cross_shard_messages", "shard_events",
              "adaptive_extensions", "dispatches_skipped", "arrivals"):
        assert a[k] == b[k], f"{path}: {k} differs across thread counts"
    print(f"  deterministic across threads: {path}")
PY
out=build-release/bench/chaos_campaign.scenario-report.json
build-release/bench/chaos_campaign --smoke --seeds=10 \
  --scenario=iot-firmware-push --shards=4 --threads=2 \
  --repro-dir=build-release/bench --report="$out" >/dev/null
python3 scripts/validate_report.py "$out"

# City-scale mobility (DESIGN.md §18): the commuter-crossing handover
# sweep with CPF crash windows colliding with the commute wave, plus the
# edge-pingpong oscillator run. fig_mobility exits non-zero itself when
# any acceptance gate misses (zero RYW under mobility+chaos, slow-path
# coverage, the corrected closed-form crossing rate within tolerance,
# bit-identical outcomes across worker-thread counts); the validator then
# re-checks the report's v5 surface independently of the bench's own gate.
echo "== mobility (build-release)"
cmake --build build-release -j --target fig_mobility
out=build-release/bench/fig_mobility.smoke-report.json
build-release/bench/fig_mobility --smoke --report="$out" >/dev/null
python3 scripts/validate_report.py "$out"
python3 scripts/summarize_bench.py "$out"

# Release chaos campaign: 50 seeds across legacy / 1-shard / multi-shard
# runtimes; any invariant violation shrinks to a replayable reproducer and
# fails the gate.
echo "== chaos campaign (build-release)"
cmake --build build-release -j --target chaos_campaign
out=build-release/bench/chaos_campaign.smoke-report.json
build-release/bench/chaos_campaign --seeds=50 --shards=4 --threads=2 \
  --repro-dir=build-release/bench --report="$out"
python3 scripts/validate_report.py "$out"

echo "check.sh: all green"
