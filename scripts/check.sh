#!/usr/bin/env bash
# Full local gate: sanitized build, tests, bench smoke runs, and JSON
# report validation. Run from the repo root:
#
#   scripts/check.sh            # everything (Debug + ASan/UBSan)
#   FAST=1 scripts/check.sh     # reuse an existing build/ instead
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${FAST:-0}" == "1" ]]; then
  BUILD=build
  EXCLUDE=()
  cmake -B "$BUILD" -S . >/dev/null
else
  BUILD=build-asan
  # Wall-clock-anchored calibration tests measure the *real* codecs;
  # sanitizer instrumentation skews the measurement, not the code under
  # test, so they only run in the un-instrumented configuration.
  EXCLUDE=(-E "MeasuredCostModel.AttachBudgetAnchored")
  cmake -B "$BUILD" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    >/dev/null
fi
echo "== build ($BUILD)"
cmake --build "$BUILD" -j

echo "== ctest"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" "${EXCLUDE[@]}"

echo "== bench smoke + report validation"
REPORTS=()
for bench in fig07_service_request_pct fig08_attach_pct_uniform \
             fig_saturation; do
  out="$BUILD/bench/$bench.smoke-report.json"
  "$BUILD/bench/$bench" --smoke --report="$out" >/dev/null
  REPORTS+=("$out")
done
python3 scripts/validate_report.py "${REPORTS[@]}"

# Extended structure-aware codec fuzz under the sanitized build: ctest
# already ran the suite at its default iteration count; this pass widens
# the corpus so memory bugs in the decoders meet ASan, not production.
echo "== codec fuzz (extended, $BUILD)"
NEUTRINO_FUZZ_ITERS=1200 "$BUILD/tests/codec_fuzz_test" >/dev/null

echo "== trace demo"
"$BUILD/examples/trace_explore" >/dev/null

# Chaos smoke under the sanitized build: a handful of randomized failure
# schedules with the online invariant checker armed. Seed count is small
# here (sanitizers are ~10x); the release stage below runs the wide sweep.
echo "== chaos smoke ($BUILD)"
cmake --build "$BUILD" -j --target chaos_campaign
out="$BUILD/bench/chaos_campaign.smoke-report.json"
"$BUILD/bench/chaos_campaign" --smoke --seeds=10 \
  --repro-dir="$BUILD/bench" --report="$out" >/dev/null
python3 scripts/validate_report.py "$out"

# ThreadSanitizer pass over the multi-threaded sharded runtime (and the
# event-loop/determinism suites it builds on). TSan and ASan cannot share
# a build; this is a separate configuration so both always run.
if [[ "${FAST:-0}" != "1" ]]; then
  echo "== build-tsan + parallel runtime tests"
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all" \
    >/dev/null
  cmake --build build-tsan -j \
    --target sim_core_test parallel_runtime_test parallel_determinism_test
  for t in sim_core_test parallel_runtime_test parallel_determinism_test; do
    echo "-- tsan: $t"
    "build-tsan/tests/$t"
  done
fi

# Throughput gate: the 100k-UE storm must complete every procedure with
# zero RYW violations (scale_throughput exits non-zero otherwise), at
# release optimization levels — sanitized builds measure the sanitizer.
# The sharded rows re-run the storm over the partitioned topology on two
# worker threads, exercising the cross-shard path at full optimization.
echo "== release build + scale smoke (build-release)"
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG" >/dev/null
cmake --build build-release -j --target scale_throughput sim_core_gbench
out=build-release/bench/scale_throughput.smoke-report.json
build-release/bench/scale_throughput --smoke --threads=1,2 --shards=2 \
  --report="$out"
python3 scripts/validate_report.py "$out"
python3 scripts/summarize_bench.py "$out"

# Deep telemetry (DESIGN.md §15): the same storm with windowed series,
# SLO burn tracking and the phase profiler armed, the last sharded row
# exporting a Perfetto trace. validate_report.py checks the v3 report
# sections and the trace-event JSON.
echo "== telemetry sections + trace export (build-release)"
tout=build-release/bench/scale_throughput.telemetry-report.json
trace=build-release/bench/scale_throughput.trace.json
build-release/bench/scale_throughput --smoke --threads=1,2 --shards=2 \
  --telemetry --trace-out="$trace" --report="$tout" >/dev/null
python3 scripts/validate_report.py "$tout" "$trace"
python3 - "$tout" <<'PY'
import json, sys
rows = json.load(open(sys.argv[1]))["rows"]
for section in ("timeseries", "slo", "profiler"):
    assert any(section in r for r in rows), f"no {section} section in any row"
print("telemetry sections present:", sys.argv[1])
PY

# Telemetry overhead gate: enabled (--telemetry) must cost <=10% over
# disabled, and a second disabled run must land within 2% of the first —
# the default-off path stays effectively free. Wall-clock is noisy, so a
# failed comparison retries (3 attempts) before failing the gate.
echo "== telemetry overhead gate (build-release)"
ok=0
for attempt in 1 2 3; do
  off1=build-release/bench/scale-overhead-off1.json
  on=build-release/bench/scale-overhead-on.json
  off2=build-release/bench/scale-overhead-off2.json
  build-release/bench/scale_throughput --smoke --report="$off1" >/dev/null
  build-release/bench/scale_throughput --smoke --telemetry \
    --report="$on" >/dev/null
  build-release/bench/scale_throughput --smoke --report="$off2" >/dev/null
  if python3 - "$off1" "$on" "$off2" <<'PY'
import json, sys
def wall(path):
    return sum(r["wall_seconds"] for r in json.load(open(path))["rows"])
off1, on, off2 = (wall(p) for p in sys.argv[1:4])
base = min(off1, off2)
drift = abs(off1 - off2) / base
overhead = (on - base) / base
print(f"telemetry overhead: disabled drift {drift:.1%}, "
      f"enabled {overhead:+.1%} (gate: 2% / 10%)")
sys.exit(0 if drift <= 0.02 and overhead <= 0.10 else 1)
PY
  then
    ok=1
    break
  fi
  echo "-- attempt $attempt noisy; retrying"
done
[[ "$ok" == 1 ]] || { echo "telemetry overhead gate failed"; exit 1; }

# Saturation sweep at release optimization: the full offered-load knee
# sweep with overload control armed; validate_report.py enforces the
# bounded-depth / zero-RYW / >=99%-completion acceptance surface.
echo "== saturation sweep (build-release)"
cmake --build build-release -j --target fig_saturation
out=build-release/bench/fig_saturation.report.json
trace=build-release/bench/fig_saturation.trace.json
build-release/bench/fig_saturation --telemetry --trace-out="$trace" \
  --report="$out" >/dev/null
python3 scripts/validate_report.py "$out" "$trace"

# Release chaos campaign: 50 seeds across legacy / 1-shard / multi-shard
# runtimes; any invariant violation shrinks to a replayable reproducer and
# fails the gate.
echo "== chaos campaign (build-release)"
cmake --build build-release -j --target chaos_campaign
out=build-release/bench/chaos_campaign.smoke-report.json
build-release/bench/chaos_campaign --seeds=50 --shards=4 --threads=2 \
  --repro-dir=build-release/bench --report="$out"
python3 scripts/validate_report.py "$out"

echo "check.sh: all green"
