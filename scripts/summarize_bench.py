#!/usr/bin/env python3
"""Render bench output into per-figure comparison tables.

Usage:  python3 scripts/summarize_bench.py [FILE ...]

Each FILE is either a bench's TSV stdout (default: bench_output.txt) or a
neutrino.bench-report JSON document (e.g. BENCH_scale.json). For the PCT
figures it pivots median PCT into an x-by-system table and appends the
best-vs-EPC ratio, which is the number the paper quotes. For JSON reports
with sharded-runtime rows it prints a thread-scaling table: events/s,
events/s per thread, and speedup relative to the threads=1 row of the
same shard count. Rows that carry a "timeseries" section (benches run
with --telemetry) additionally render each windowed series as a text
sparkline over sim-time.

When a committed BENCH_scale.json exists (or --baseline=PATH names any
other bench-report), every sharded row additionally gets a "vs previous"
delta pair — events/s change and barrier_wait-share change against the
baseline row with the same (system, shards, threads, window policy) — so
a perf regression shows up in the table, not in a diff of raw JSON.
No third-party dependencies.
"""
import json
import os
import sys
from collections import defaultdict


def parse(path):
    rows = defaultdict(list)  # figure -> [line fields]
    for line in open(path):
        line = line.strip()
        if not line or line.startswith("#") or "\t" not in line:
            continue
        fields = line.split("\t")
        rows[fields[0]].append(fields[1:])
    return rows


def medians_table(fig, rows):
    # rows: [system, x, n=..., p25=..., p50=..., ...]
    table = defaultdict(dict)  # x -> system -> p50
    systems = []
    for fields in rows:
        system, x = fields[0], fields[1]
        p50 = next((f.split("=")[1] for f in fields if f.startswith("p50=")),
                   None)
        if p50 is None:
            continue
        if system not in systems:
            systems.append(system)
        table[float(x)][system] = float(p50)
    if not table:
        return
    print(f"\n== {fig}: median PCT (ms) ==")
    print("{:>10} ".format("x") + " ".join(f"{s:>18}" for s in systems) +
          "  best/EPC-like")
    baseline = systems[0]
    for x in sorted(table):
        cells = table[x]
        line = f"{x:>10.0f} " + " ".join(
            f"{cells.get(s, float('nan')):>18.3f}" for s in systems)
        if baseline in cells:
            best = min(v for v in cells.values())
            if best > 0:
                line += f"  {cells[baseline] / best:>8.1f}x"
        print(line)


def passthrough_table(fig, rows):
    print(f"\n== {fig} ==")
    for fields in rows:
        print("  " + "  ".join(fields))


def load_json_report(text):
    """Parse a bench-report document (possibly with TSV rows in front)."""
    stripped = text.lstrip()
    if stripped.startswith("{"):
        doc = json.loads(stripped)
    else:
        lines = text.splitlines(keepends=True)
        start = next((i for i, ln in enumerate(lines)
                      if ln.rstrip("\n") == "{"), None)
        if start is None:
            return None
        doc = json.loads("".join(lines[start:]))
    if doc.get("schema") != "neutrino.bench-report":
        return None
    return doc


def row_key(row):
    """Identity of a row for cross-report comparison: same system, shard
    geometry and window policy."""
    return (row.get("system"), row.get("mode"), row.get("shards"),
            row.get("threads"), row.get("adaptive_lookahead"),
            bool(row.get("sharded_baseline", False)))


def barrier_share(row):
    """barrier_wait share of total profiled time, or None."""
    prof = row.get("profiler")
    if isinstance(prof, dict):
        entry = prof.get("phases", {}).get("barrier_wait")
        if isinstance(entry, dict) and \
                isinstance(entry.get("share"), (int, float)):
            return entry["share"]
    return None


def delta_cells(row, prev_rows):
    """'vs previous' cells: events/s delta and barrier_wait-share delta
    against the matching row of the baseline report."""
    prev = prev_rows.get(row_key(row)) if prev_rows else None
    if prev is None and prev_rows and row.get("adaptive_lookahead"):
        # Baselines predating the window-policy keys carry no
        # adaptive_lookahead: compare the current default-policy row
        # against the old unlabeled one rather than printing nothing.
        key = list(row_key(row))
        key[4] = None
        prev = prev_rows.get(tuple(key))
    if prev is None:
        return f"{'--':>8} {'--':>8}"
    eps, prev_eps = row.get("events_per_sec"), prev.get("events_per_sec")
    if isinstance(eps, (int, float)) and isinstance(prev_eps, (int, float)) \
            and prev_eps > 0:
        ev = f"{(eps - prev_eps) / prev_eps:+7.1%}"
    else:
        ev = "--"
    share, prev_share = barrier_share(row), barrier_share(prev)
    if share is not None and prev_share is not None:
        bw = f"{(share - prev_share) * 100:+6.1f}pp"
    else:
        bw = "--"
    return f"{ev:>8} {bw:>8}"


def scaling_table(doc, prev_rows=None):
    """events/s-per-thread scaling of a report's sharded rows."""
    fig = doc.get("figure", "?")
    single = [r for r in doc.get("rows", [])
              if r.get("mode") != "sharded" and "events_per_sec" in r]
    sharded = [r for r in doc.get("rows", []) if r.get("mode") == "sharded"]
    for row in single:
        line = (f"  {row.get('system', '?'):>12}  single-thread baseline: "
                f"{row['events_per_sec'] / 1e6:6.2f}M events/s")
        if prev_rows:
            line += f"   vs prev: {delta_cells(row, prev_rows)}"
        print(line)
    if not sharded:
        print(f"  (no sharded rows in {fig})")
        return
    by_shards = defaultdict(list)
    for row in sharded:
        by_shards[row.get("shards", 0)].append(row)
    for shards in sorted(by_shards):
        rows = sorted(by_shards[shards], key=lambda r: r.get("threads", 0))
        base = next((r["events_per_sec"] for r in rows
                     if r.get("threads") == 1), None)
        print(f"\n  shards={shards}")
        header = (f"  {'threads':>8} {'events/s':>12} {'per-thread':>12} "
                  f"{'speedup':>8} {'windows':>10} {'cross-msgs':>12}")
        if prev_rows:
            header += f" {'Δev/s':>8} {'Δbarrier':>8}"
        print(header)
        for r in rows:
            threads = r.get("threads", 0)
            eps = r.get("events_per_sec", 0.0)
            per_thread = eps / threads if threads else 0.0
            speedup = f"{eps / base:7.2f}x" if base else "      ?"
            line = (f"  {threads:>8} {eps:>12.0f} {per_thread:>12.0f} "
                    f"{speedup:>8} {r.get('windows', 0):>10} "
                    f"{r.get('cross_shard_messages', 0):>12}")
            if prev_rows:
                line += f" {delta_cells(r, prev_rows)}"
            print(line)


SPARK = "▁▂▃▄▅▆▇█"  # ▁▂▃▄▅▆▇█


def sparkline(values, width=64):
    """Render values as one sparkline row, max-pooled down to `width`."""
    if not values:
        return ""
    if len(values) > width:
        stride = (len(values) + width - 1) // width
        values = [max(values[i:i + stride])
                  for i in range(0, len(values), stride)]
    top = max(values)
    if top <= 0:
        return SPARK[0] * len(values)
    return "".join(SPARK[min(7, int(v / top * 8))] for v in values)


def timeseries_view(doc):
    """Sparklines for every windowed series of every --telemetry row."""
    for row in doc.get("rows", []):
        ts = row.get("timeseries")
        if not isinstance(ts, dict) or not ts.get("series"):
            continue
        label = row.get("system", "?")
        if "threads" in row:
            label += (f" shards={row.get('shards', '?')}"
                      f" threads={row['threads']}")
        print(f"\n  {label}  (window {ts.get('window_ms')} ms)")
        for key in sorted(ts["series"]):
            s = ts["series"][key]
            vals = [p[1] for p in s.get("points", [])
                    if isinstance(p, list) and len(p) == 2]
            print(f"    {key:<40} {sparkline(vals)}  "
                  f"max={s.get('max', 0):g}")


def scenario_table(doc):
    """fig_scenarios: per-scenario knee sweep — completion, merged PCT and
    overload counters per offered multiple, plus the offered-arrival shape
    as a sparkline (the scenario's envelope/spike structure)."""
    config = doc.get("config", {})
    knees = config.get("knees", {})
    by_scenario = defaultdict(list)
    for row in doc.get("rows", []):
        if row.get("scenario"):
            by_scenario[row["scenario"]].append(row)
    for name in config.get("scenarios", sorted(by_scenario)):
        rows = sorted(by_scenario.get(name, []), key=lambda r: r.get("x", 0))
        if not rows:
            continue
        knee = knees.get(name)
        knee_str = f"{knee / 1e3:.0f}k pps" if isinstance(
            knee, (int, float)) else "?"
        print(f"\n  {name}  (knee {knee_str})")
        print(f"  {'x':>5} {'offered':>10} {'compl':>7} {'p50ms':>8} "
              f"{'p95ms':>9} {'p99ms':>9} {'sheds':>7} {'retx':>7} "
              f"{'exhaust':>7}")
        for r in rows:
            pct = r.get("pct_ms", {})
            counters = r.get("counters", {})
            print(f"  {r.get('x', 0):>5.2f} "
                  f"{r.get('offered_pps', 0):>10.0f} "
                  f"{r.get('completion_rate', 0):>7.4f} "
                  f"{pct.get('p50', 0):>8.3f} {pct.get('p95', 0):>9.3f} "
                  f"{pct.get('p99', 0):>9.3f} "
                  f"{counters.get('core.attach_sheds', 0):>7} "
                  f"{counters.get('core.nas_retransmissions', 0):>7} "
                  f"{counters.get('core.retx_exhausted', 0):>7}")
        series = rows[-1].get("arrival_series", {})
        vals = [p[1] for p in series.get("points", [])
                if isinstance(p, list) and len(p) == 2]
        if vals:
            print(f"  arrivals {sparkline(vals)}  "
                  f"(window {series.get('window_ms', 0):g} ms, "
                  f"peak {max(vals)})")


def mobility_table(doc):
    """fig_mobility: the closed-form rate validation, then handover PCT
    tails and fast/slow path split per worker-thread count (schema v5)."""
    mob = doc.get("config", {}).get("mobility", {})
    if mob:
        kappa = mob.get("block_correction", 0)
        print(f"  moving UEs {mob.get('moving_ues', '?')}, "
              f"crossings {mob.get('crossings', '?')}, "
              f"kappa={kappa:.4f}, worst rate deviation "
              f"{mob.get('worst_rate_deviation', 0):.4f} "
              f"(tolerance {mob.get('rate_tolerance', 0):g})")
        for c in mob.get("classes", []):
            mark = "  [validated]" if c.get("validate") else ""
            print(f"    {c.get('name', '?'):<16} "
                  f"ues={c.get('ues', 0):<8} "
                  f"crossings={c.get('crossings', 0):<8} "
                  f"measured={c.get('measured_rate_hz', 0):.6f}Hz "
                  f"predicted={c.get('predicted_rate_hz', 0) * kappa:.6f}Hz"
                  f"{mark}")
    print(f"\n  {'system':>18} {'threads':>8} {'n':>8} {'p50ms':>8} "
          f"{'p95ms':>8} {'p99ms':>8} {'fast':>8} {'fetch':>8} "
          f"{'pingpong':>9} {'ryw':>5}")
    for r in doc.get("rows", []):
        pct = r.get("handover_pct_ms", {})
        counters = r.get("counters", {})
        pingpong = r.get("pingpong_pairs", "-")
        print(f"  {r.get('system', '?'):>18} {r.get('threads', 0):>8} "
              f"{pct.get('n', 0):>8} {pct.get('p50', 0):>8.3f} "
              f"{pct.get('p95', 0):>8.3f} {pct.get('p99', 0):>8.3f} "
              f"{counters.get('core.fast_handovers', 0):>8} "
              f"{counters.get('core.state_fetches', 0):>8} "
              f"{pingpong:>9} "
              f"{counters.get('core.ryw_violations', 0):>5}")
    rows = doc.get("rows", [])
    series = rows[0].get("arrival_series", {}) if rows else {}
    vals = [p[1] for p in series.get("points", [])
            if isinstance(p, list) and len(p) == 2]
    if vals:
        print(f"  arrivals {sparkline(vals)}  "
              f"(window {series.get('window_ms', 0):g} ms, "
              f"peak {max(vals)})")


def summarize_tsv(path):
    rows = parse(path)
    for fig in sorted(rows):
        if any(any(f.startswith("p50=") for f in r) for r in rows[fig]):
            medians_table(fig, rows[fig])
        else:
            passthrough_table(fig, rows[fig])


DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_scale.json")


def load_baseline_rows(path):
    """Index a baseline report's rows by comparison key, or None."""
    try:
        doc = load_json_report(open(path).read())
    except (OSError, json.JSONDecodeError):
        return None
    if doc is None:
        return None
    return {row_key(r): r for r in doc.get("rows", [])}


def main():
    args = sys.argv[1:]
    baseline_path = DEFAULT_BASELINE
    paths = []
    for a in args:
        if a.startswith("--baseline="):
            baseline_path = a[len("--baseline="):]
        else:
            paths.append(a)
    if not paths:
        paths = ["bench_output.txt"]
    for path in paths:
        doc = None
        try:
            doc = load_json_report(open(path).read())
        except (OSError, json.JSONDecodeError):
            doc = None
        if doc is not None:
            # Don't diff the committed baseline against itself.
            prev_rows = None
            if baseline_path and \
                    os.path.realpath(path) != os.path.realpath(baseline_path):
                prev_rows = load_baseline_rows(baseline_path)
            if doc.get("figure") == "fig_scenarios":
                print(f"\n== fig_scenarios: per-scenario saturation "
                      f"({path}) ==")
                scenario_table(doc)
                timeseries_view(doc)
                continue
            if doc.get("figure") == "fig_mobility":
                print(f"\n== fig_mobility: handover tails under mobility "
                      f"({path}) ==")
                mobility_table(doc)
                timeseries_view(doc)
                continue
            print(f"\n== {doc.get('figure', path)}: sharded-runtime "
                  f"scaling ({path}) ==")
            if prev_rows:
                print(f"  (vs previous: {baseline_path})")
            scenario = doc.get("config", {}).get("scenario")
            if isinstance(scenario, dict) and scenario.get("name"):
                print(f"  (scenario: {scenario['name']})")
            scaling_table(doc, prev_rows)
            timeseries_view(doc)
        else:
            summarize_tsv(path)


if __name__ == "__main__":
    main()
