#!/usr/bin/env python3
"""Render bench_output.txt into per-figure comparison tables.

Usage:  python3 scripts/summarize_bench.py [bench_output.txt]

For the PCT figures it pivots median PCT into an x-by-system table and
appends the best-vs-EPC ratio, which is the number the paper quotes.
No third-party dependencies.
"""
import re
import sys
from collections import defaultdict


def parse(path):
    rows = defaultdict(list)  # figure -> [line fields]
    for line in open(path):
        line = line.strip()
        if not line or line.startswith("#") or "\t" not in line:
            continue
        fields = line.split("\t")
        rows[fields[0]].append(fields[1:])
    return rows


def medians_table(fig, rows):
    # rows: [system, x, n=..., p25=..., p50=..., ...]
    table = defaultdict(dict)  # x -> system -> p50
    systems = []
    for fields in rows:
        system, x = fields[0], fields[1]
        p50 = next((f.split("=")[1] for f in fields if f.startswith("p50=")),
                   None)
        if p50 is None:
            continue
        if system not in systems:
            systems.append(system)
        table[float(x)][system] = float(p50)
    if not table:
        return
    print(f"\n== {fig}: median PCT (ms) ==")
    print("{:>10} ".format("x") + " ".join(f"{s:>18}" for s in systems) +
          "  best/EPC-like")
    baseline = systems[0]
    for x in sorted(table):
        cells = table[x]
        line = f"{x:>10.0f} " + " ".join(
            f"{cells.get(s, float('nan')):>18.3f}" for s in systems)
        if baseline in cells:
            best = min(v for v in cells.values())
            if best > 0:
                line += f"  {cells[baseline] / best:>8.1f}x"
        print(line)


def passthrough_table(fig, rows):
    print(f"\n== {fig} ==")
    for fields in rows:
        print("  " + "  ".join(fields))


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    rows = parse(path)
    for fig in sorted(rows):
        if any(any(f.startswith("p50=") for f in r) for r in rows[fig]):
            medians_table(fig, rows[fig])
        else:
            passthrough_table(fig, rows[fig])


if __name__ == "__main__":
    main()
