#!/usr/bin/env python3
"""Validate a neutrino bench or chaos-campaign JSON document.

Usage:  python3 scripts/validate_report.py REPORT.json [REPORT2.json ...]

A report may be a bare JSON file (--report=PATH) or a bench's stdout with
the TSV rows still in front (the JSON document starts at the first line
that is exactly "{"). The document's "schema" key selects the checks.

neutrino.bench-report:
  * schema/version envelope and required keys;
  * every row has a system name; percentile summaries are internally
    consistent (count > 0 implies p50 <= p99 <= max);
  * counters are non-negative integers;
  * when a row carries decomposition_ms, each procedure's component means
    (propagation + queueing + service + serialization + other) sum to the
    "total" mean within 1% — the tracer's tiling guarantee;
  * version >= 2: every row carries "mode"; "sharded" rows carry
    shards/threads/windows/cross_shard_messages and a shard_events list
    with one non-negative entry per shard summing to events_executed;
    window-policy keys, when present (DESIGN.md §16): row
    adaptive_lookahead / sharded_baseline are booleans, drain_batch /
    adaptive_extensions / dispatches_skipped are non-negative integers,
    and config adaptive_lookahead / drain_batch are typed the same way;
    config sync_overhead_threads1 (the threads=1 shard-sync overhead
    ratio the perf gate reads) is a number > -1 — negative when the
    sharded sample happened to beat the legacy baseline;
  * version >= 3 (deep telemetry, DESIGN.md §15): a row's "timeseries"
    section has a positive window, strictly monotone per-series
    timestamps and point-list lengths consistent with the exporter's
    shared subsampling stride; an "slo" section has monotone targets,
    violation counts bounded by the sample count and burn rates matching
    (violations/count)/(1-q); a "profiler" section has non-negative
    ns/calls, shares in [0,1] summing to 1, and lane totals matching the
    per-phase totals;
  * version >= 4 (traffic scenarios, DESIGN.md §17): a config "scenario"
    object names a valid generation request (non-empty name, bool
    preattach, numeric rate/duration/population/regions/seed); every row
    carrying "scenario" also carries "arrivals" (per-class counts summing
    to the total) and an "arrival_series" whose windowed counts are
    non-negative, strictly monotone in time and sum to the total;
  * figure "fig_saturation" additionally: a calibrated knee and queue
    capacity in config; every overload-control row has zero RYW
    violations, >= 99% completion and a peak queue depth within 2x the
    configured capacity; the 2x-knee row actually shed attaches; and the
    unbounded baseline's peak depth exceeds that bound (the backlog the
    controller is there to prevent). Scenario-mode sweeps (config carries
    "scenario") skip these gates: the calibrated acceptance story for
    named scenarios lives in fig_scenarios.
  * figure "fig_scenarios" additionally: config.scenarios is a non-empty
    string list with a positive calibrated knee per scenario; every row
    names a scenario from that list with offered_pps/knee_pps > 0, a
    completion_rate in [0,1] and a pct_ms summary; each scenario's
    x=1.0 (knee) row shows zero RYW violations and >= 99% completion.
  * figure "fig_mobility" additionally (schema v5, DESIGN.md §18): a
    config "mobility" object with grid geometry (positive pitch,
    hysteresis, ping-pong window, expected leg), a block correction in
    (0, 1], non-negative crossing/ping-pong counters, a per-class list
    (non-negative measured/predicted rates, bool validate) and, when any
    class validates, worst_rate_deviation within rate_tolerance; every
    row carries a handover_pct_ms summary and zero RYW violations; all
    commuter-crossing rows (one per worker-thread count) are bit-identical
    in events, counters and handover PCT; edge-pingpong rows carry
    positive pingpong_pairs and non-negative suppressed_excursions.

Chrome/Perfetto trace-event JSON (a document with "traceEvents" and no
"schema" key, as written by --trace-out=):
  * traceEvents is a list; every event has a name, a phase in {M, X, C}
    and integer pid/tid; "X" complete events carry non-negative ts and
    dur; "C" counter events carry ts and args.

neutrino.chaos-campaign:
  * envelope, config, seeds_run and mismatch counters;
  * one per_runtime row per runtime with non-negative integer
    violations/started/completed/lost/unquiesced and a recovery-outcome
    histogram of non-negative integers;
  * every failing_seeds entry names its seed and runtime, and any
    reproducer path is a non-empty string.

Exit code 0 when every file passes. No third-party dependencies.
"""
import json
import sys

COMPONENTS = ("propagation", "queueing", "service", "serialization", "other")
SCHEMA = "neutrino.bench-report"
CAMPAIGN_SCHEMA = "neutrino.chaos-campaign"
MODES = ("single-thread", "sharded")


def extract_json(text):
    """Return the JSON document embedded in bench stdout (or the whole file)."""
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return json.loads(stripped)
    for i, line in enumerate(text.splitlines(keepends=True)):
        if line.rstrip("\n") == "{":
            return json.loads("".join(text.splitlines(keepends=True)[i:]))
    raise ValueError("no JSON document found")


def check_summary(path, where, s, errors):
    for k in ("n", "mean", "p50", "p99", "max"):
        if k not in s:
            errors.append(f"{path}: {where}: summary missing '{k}'")
            return
    if s["n"] > 0 and not (s["p50"] <= s["p99"] <= s["max"]):
        errors.append(f"{path}: {where}: percentiles not monotone: {s}")


def check_decomposition(path, where, decomp, errors):
    for proc, comps in decomp.items():
        if "total" not in comps:
            errors.append(f"{path}: {where}: {proc}: no 'total' component")
            continue
        total = comps["total"]["mean"]
        parts = [c for c in COMPONENTS if c in comps]
        missing = [c for c in COMPONENTS if c not in comps]
        if missing:
            errors.append(f"{path}: {where}: {proc}: missing {missing}")
        s = sum(comps[c]["mean"] for c in parts)
        tol = max(abs(total) * 0.01, 1e-9)
        if abs(s - total) > tol:
            errors.append(
                f"{path}: {where}: {proc}: components sum to {s:.6f} "
                f"but total is {total:.6f} (>1% off)")


def check_sharded(path, where, row, errors):
    for k in ("shards", "threads", "windows", "cross_shard_messages",
              "shard_events"):
        if k not in row:
            errors.append(f"{path}: {where}: sharded row missing '{k}'")
            return
    per_shard = row["shard_events"]
    if (not isinstance(per_shard, list) or
            any(not isinstance(e, int) or e < 0 for e in per_shard)):
        errors.append(f"{path}: {where}: shard_events must be a list of "
                      f"non-negative integers: {per_shard!r}")
        return
    if len(per_shard) != row["shards"]:
        errors.append(f"{path}: {where}: {len(per_shard)} shard_events "
                      f"entries for shards={row['shards']}")
    if row["threads"] < 1:
        errors.append(f"{path}: {where}: threads = {row['threads']!r}")
    if "events_executed" in row and sum(per_shard) != row["events_executed"]:
        errors.append(
            f"{path}: {where}: shard_events sum to {sum(per_shard)} but "
            f"events_executed is {row['events_executed']}")
    # Window-policy keys (adaptive lookahead / batched drains) are
    # optional but strictly typed when present.
    for k in ("adaptive_lookahead", "sharded_baseline"):
        if k in row and not isinstance(row[k], bool):
            errors.append(f"{path}: {where}: {k} = {row[k]!r}, want bool")
    for k in ("drain_batch", "adaptive_extensions", "dispatches_skipped"):
        if k in row and not nonneg_int(row[k]):
            errors.append(f"{path}: {where}: {k} = {row[k]!r}")


# Mirrors obs::windowed_series_json's max_points: the exporter derives one
# subsampling stride from the longest series and applies it to every
# series in the row, so point-list lengths are a pure function of "n".
MAX_TS_POINTS = 256
WINDOW_AGGS = ("sum", "max", "last")
QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def check_timeseries(path, where, ts, errors):
    window_ms = ts.get("window_ms")
    if not isinstance(window_ms, (int, float)) or window_ms <= 0:
        errors.append(f"{path}: {where}: window_ms = {window_ms!r}")
        return
    series = ts.get("series")
    if not isinstance(series, dict) or not series:
        errors.append(f"{path}: {where}: no series")
        return
    longest = max((s.get("n", 0) for s in series.values()
                   if isinstance(s, dict)), default=0)
    stride = (longest + MAX_TS_POINTS - 1) // MAX_TS_POINTS \
        if longest > MAX_TS_POINTS else 1
    for key, s in series.items():
        w = f"{where}.series[{key}]"
        if s.get("agg") not in WINDOW_AGGS:
            errors.append(f"{path}: {w}: agg = {s.get('agg')!r}")
        n = s.get("n")
        if not nonneg_int(n) or n == 0:
            errors.append(f"{path}: {w}: n = {n!r}")
            continue
        points = s.get("points")
        if not isinstance(points, list) or not points:
            errors.append(f"{path}: {w}: no points")
            continue
        expected = (n + stride - 1) // stride
        if len(points) != expected:
            errors.append(f"{path}: {w}: {len(points)} points for n={n} "
                          f"with stride {stride} (want {expected})")
        prev = None
        for p in points:
            if (not isinstance(p, list) or len(p) != 2 or
                    not all(isinstance(v, (int, float)) for v in p)):
                errors.append(f"{path}: {w}: malformed point {p!r}")
                break
            if p[0] < 0 or (prev is not None and p[0] <= prev):
                errors.append(f"{path}: {w}: timestamps not strictly "
                              f"monotone at t={p[0]!r}")
                break
            prev = p[0]


def check_slo(path, where, slo, errors):
    window_ms = slo.get("window_ms")
    if not isinstance(window_ms, (int, float)) or window_ms <= 0:
        errors.append(f"{path}: {where}: window_ms = {window_ms!r}")
        return
    for proc, entry in slo.get("procs", {}).items():
        w = f"{where}.procs[{proc}]"
        targets = entry.get("targets_ms", {})
        bounds = [targets.get(q) for q, _ in QUANTILES]
        if (any(not isinstance(b, (int, float)) or b <= 0 for b in bounds)
                or not bounds[0] <= bounds[1] <= bounds[2]):
            errors.append(f"{path}: {w}: targets not monotone positive: "
                          f"{targets!r}")
            continue
        count = entry.get("count")
        if not nonneg_int(count) or count == 0:
            errors.append(f"{path}: {w}: count = {count!r}")
            continue
        viol = entry.get("violations", {})
        burn = entry.get("burn", {})
        prev_v = None
        for q, frac in QUANTILES:
            v = viol.get(q)
            if not nonneg_int(v) or v > count:
                errors.append(f"{path}: {w}: violations.{q} = {v!r} "
                              f"(count {count})")
                break
            # Bounds rise with the quantile, so violation counts fall.
            if prev_v is not None and v > prev_v:
                errors.append(f"{path}: {w}: violations.{q} = {v} exceeds "
                              f"the lower quantile's {prev_v}")
            prev_v = v
            want = (v / count) / (1.0 - frac)
            got = burn.get(q)
            if (not isinstance(got, (int, float)) or
                    abs(got - want) > max(abs(want) * 1e-6, 1e-9)):
                errors.append(f"{path}: {w}: burn.{q} = {got!r}, "
                              f"want {want:.9g}")
        windows = entry.get("windows")
        if not isinstance(windows, list) or not windows:
            errors.append(f"{path}: {w}: no windows")
            continue
        prev_t = None
        win_count = 0
        win_p99 = 0
        bad = False
        for row in windows:
            if (not isinstance(row, list) or len(row) != 4 or
                    not all(isinstance(v, (int, float)) for v in row)):
                errors.append(f"{path}: {w}: malformed window {row!r}")
                bad = True
                break
            if prev_t is not None and row[0] <= prev_t:
                errors.append(f"{path}: {w}: window timestamps not "
                              f"strictly monotone at t={row[0]!r}")
                bad = True
                break
            prev_t = row[0]
            win_count += row[1]
            win_p99 += row[2]
        if not bad:
            if win_count != count:
                errors.append(f"{path}: {w}: window counts sum to "
                              f"{win_count}, total is {count}")
            if win_p99 != viol.get("p99"):
                errors.append(f"{path}: {w}: window p99 violations sum to "
                              f"{win_p99}, total is {viol.get('p99')!r}")


def check_profiler(path, where, prof, errors):
    phases = prof.get("phases")
    if not isinstance(phases, dict):
        errors.append(f"{path}: {where}: missing phases")
        return
    share_sum = 0.0
    ns_sum = 0
    for name, entry in phases.items():
        w = f"{where}.phases[{name}]"
        for k in ("ns", "calls"):
            if not nonneg_int(entry.get(k)):
                errors.append(f"{path}: {w}: {k} = {entry.get(k)!r}")
                return
        share = entry.get("share")
        if not isinstance(share, (int, float)) or not 0.0 <= share <= 1.0:
            errors.append(f"{path}: {w}: share = {share!r}")
            return
        share_sum += share
        ns_sum += entry["ns"]
    if phases and ns_sum > 0 and abs(share_sum - 1.0) > 1e-6:
        errors.append(f"{path}: {where}: shares sum to {share_sum:.9g}")
    lanes = prof.get("lane_ns")
    if not isinstance(lanes, list):
        errors.append(f"{path}: {where}: missing lane_ns")
        return
    lane_total = 0
    for i, lane in enumerate(lanes):
        if (not isinstance(lane, list) or
                any(not nonneg_int(v) for v in lane)):
            errors.append(f"{path}: {where}: lane_ns[{i}] = {lane!r}")
            return
        lane_total += sum(lane)
    if lane_total != ns_sum:
        errors.append(f"{path}: {where}: lane_ns sums to {lane_total}, "
                      f"phase totals to {ns_sum}")


def check_trace(path, doc, errors):
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        errors.append(f"{path}: traceEvents is {type(events).__name__}")
        return
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{path}: {where}: not an object")
            return
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            errors.append(f"{path}: {where}: missing name")
        ph = ev.get("ph")
        if ph not in ("M", "X", "C"):
            errors.append(f"{path}: {where}: ph = {ph!r}")
            continue
        for k in ("pid", "tid"):
            if not isinstance(ev.get(k), int):
                errors.append(f"{path}: {where}: {k} = {ev.get(k)!r}")
        if ph in ("X", "C"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{path}: {where}: ts = {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{path}: {where}: dur = {dur!r}")
        if ph in ("M", "C") and not isinstance(ev.get("args"), dict):
            errors.append(f"{path}: {where}: {ph} event without args")


def check_rows(path, rows, errors, version):
    decomposed = 0
    for i, row in enumerate(rows):
        where = f"rows[{i}]"
        if "system" not in row:
            errors.append(f"{path}: {where}: missing 'system'")
        if version >= 2:
            mode = row.get("mode")
            if mode not in MODES:
                errors.append(f"{path}: {where}: mode is {mode!r}, "
                              f"want one of {MODES}")
            elif mode == "sharded":
                check_sharded(path, where, row, errors)
        for key, val in row.items():
            if isinstance(val, dict) and "p50" in val and "n" in val:
                check_summary(path, f"{where}.{key}", val, errors)
        counters = row.get("counters", {})
        for name, v in counters.items():
            if not isinstance(v, int) or v < 0:
                errors.append(f"{path}: {where}: counter {name} = {v!r}")
        if "peak_rss_delta_bytes" in row and \
                not nonneg_int(row["peak_rss_delta_bytes"]):
            errors.append(f"{path}: {where}: peak_rss_delta_bytes = "
                          f"{row['peak_rss_delta_bytes']!r}")
        if "timeseries" in row:
            check_timeseries(path, f"{where}.timeseries", row["timeseries"],
                             errors)
        if "slo" in row:
            check_slo(path, f"{where}.slo", row["slo"], errors)
        if "profiler" in row:
            check_profiler(path, f"{where}.profiler", row["profiler"], errors)
        if version >= 4 and "scenario" in row:
            check_scenario_row(path, where, row, errors)
        if "decomposition_ms" in row:
            decomposed += 1
            check_decomposition(path, where, row["decomposition_ms"], errors)
        # Nested results (ablations attach clean/under_failure sub-objects).
        for key in ("clean", "under_failure"):
            if key in row and "decomposition_ms" in row[key]:
                decomposed += 1
                check_decomposition(path, f"{where}.{key}",
                                    row[key]["decomposition_ms"], errors)
    return decomposed


def check_scenario_config(path, scenario, errors):
    """Schema v4: the config 'scenario' object echoed by --scenario= runs."""
    where = "config.scenario"
    name = scenario.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{path}: {where}: name = {name!r}")
    if not isinstance(scenario.get("preattach"), bool):
        errors.append(f"{path}: {where}: preattach = "
                      f"{scenario.get('preattach')!r}, want bool")
    for k in ("target_pps", "duration_ms", "population", "regions", "seed"):
        v = scenario.get(k)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
            errors.append(f"{path}: {where}: {k} = {v!r}")


def check_scenario_row(path, where, row, errors):
    """Schema v4: rows carrying 'scenario' must account for their offered
    arrivals: per-class counts and a windowed series both summing to the
    total."""
    if not isinstance(row.get("scenario"), str) or not row["scenario"]:
        errors.append(f"{path}: {where}: scenario = {row.get('scenario')!r}")
    arrivals = row.get("arrivals")
    if not isinstance(arrivals, dict):
        errors.append(f"{path}: {where}: scenario row without 'arrivals'")
        return
    total = arrivals.get("total")
    if not nonneg_int(total):
        errors.append(f"{path}: {where}: arrivals.total = {total!r}")
        return
    per_class = arrivals.get("per_class")
    if not isinstance(per_class, dict) or not per_class:
        errors.append(f"{path}: {where}: arrivals.per_class = {per_class!r}")
    else:
        bad = [k for k, v in per_class.items() if not nonneg_int(v)]
        if bad:
            errors.append(f"{path}: {where}: non-integer class counts {bad}")
        elif sum(per_class.values()) != total:
            errors.append(
                f"{path}: {where}: per-class counts sum to "
                f"{sum(per_class.values())}, total is {total}")
    series = row.get("arrival_series")
    if not isinstance(series, dict):
        errors.append(f"{path}: {where}: scenario row without "
                      f"'arrival_series'")
        return
    window_ms = series.get("window_ms")
    if not isinstance(window_ms, (int, float)) or window_ms <= 0:
        errors.append(f"{path}: {where}: arrival_series.window_ms = "
                      f"{window_ms!r}")
    points = series.get("points")
    if not isinstance(points, list) or not points:
        errors.append(f"{path}: {where}: arrival_series without points")
        return
    prev_t = None
    count_sum = 0
    for p in points:
        if (not isinstance(p, list) or len(p) != 2 or
                not isinstance(p[0], (int, float)) or not nonneg_int(p[1])):
            errors.append(f"{path}: {where}: malformed arrival point {p!r}")
            return
        if p[0] < 0 or (prev_t is not None and p[0] <= prev_t):
            errors.append(f"{path}: {where}: arrival timestamps not "
                          f"strictly monotone at t={p[0]!r}")
            return
        prev_t = p[0]
        count_sum += p[1]
    if count_sum != total:
        errors.append(f"{path}: {where}: arrival_series sums to "
                      f"{count_sum}, arrivals.total is {total}")


def check_scenarios_figure(path, doc, errors):
    """fig_scenarios: per-scenario knee calibration + the ISSUE acceptance
    gate (zero RYW, >= 99% completion at every scenario's 1x-knee row)."""
    config = doc.get("config", {})
    names = config.get("scenarios")
    if (not isinstance(names, list) or not names or
            any(not isinstance(n, str) or not n for n in names)):
        errors.append(f"{path}: config.scenarios = {names!r}")
        return
    knees = config.get("knees", {})
    for name in names:
        knee = knees.get(name) if isinstance(knees, dict) else None
        if not isinstance(knee, (int, float)) or isinstance(knee, bool) or \
                knee <= 0:
            errors.append(f"{path}: config.knees[{name}] = {knee!r}")
    at_knee = {}
    for i, row in enumerate(doc.get("rows", [])):
        where = f"rows[{i}]"
        name = row.get("scenario")
        if name not in names:
            errors.append(f"{path}: {where}: scenario {name!r} not in "
                          f"config.scenarios")
            continue
        for k in ("offered_pps", "knee_pps"):
            v = row.get(k)
            if not isinstance(v, (int, float)) or isinstance(v, bool) or \
                    v <= 0:
                errors.append(f"{path}: {where}: {k} = {v!r}")
        completion = row.get("completion_rate")
        if not isinstance(completion, (int, float)) or \
                not 0.0 <= completion <= 1.0:
            errors.append(f"{path}: {where}: completion_rate = "
                          f"{completion!r}")
            continue
        if "pct_ms" not in row:
            errors.append(f"{path}: {where}: missing pct_ms")
        if row.get("x") == 1.0:
            at_knee[name] = True
            if row.get("counters", {}).get("core.ryw_violations", 0) != 0:
                errors.append(f"{path}: {where}: {name}: RYW violations at "
                              f"the knee")
            if completion < 0.99:
                errors.append(f"{path}: {where}: {name}: knee completion "
                              f"{completion!r} < 0.99")
    for name in names:
        if name not in at_knee:
            errors.append(f"{path}: scenario {name} has no x=1.0 (knee) row")


def check_mobility_figure(path, doc, errors):
    """fig_mobility (schema v5): the mobility config block, the closed-form
    rate gate, zero RYW, and cross-thread bit-identity of the chaos runs."""
    config = doc.get("config", {})
    mob = config.get("mobility")
    if not isinstance(mob, dict):
        errors.append(f"{path}: config.mobility = {mob!r}, want object")
        return
    where = "config.mobility"
    for k in ("moving_ues", "crossings", "pingpong_pairs",
              "suppressed_excursions"):
        if not nonneg_int(mob.get(k)):
            errors.append(f"{path}: {where}: {k} = {mob.get(k)!r}")
    for k in ("cell_pitch_m", "hysteresis_m", "pingpong_window_s",
              "expected_leg_m", "rate_tolerance"):
        v = mob.get(k)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or v <= 0:
            errors.append(f"{path}: {where}: {k} = {v!r}")
    kappa = mob.get("block_correction")
    if not isinstance(kappa, (int, float)) or isinstance(kappa, bool) or \
            not 0.0 < kappa <= 1.0:
        errors.append(f"{path}: {where}: block_correction = {kappa!r}, "
                      f"want a finite-block factor in (0, 1]")
    dev = mob.get("worst_rate_deviation")
    if not isinstance(dev, (int, float)) or isinstance(dev, bool) or dev < 0:
        errors.append(f"{path}: {where}: worst_rate_deviation = {dev!r}")
    if not isinstance(mob.get("rate_validated"), bool):
        errors.append(f"{path}: {where}: rate_validated = "
                      f"{mob.get('rate_validated')!r}, want bool")
    classes = mob.get("classes")
    if not isinstance(classes, list) or not classes:
        errors.append(f"{path}: {where}: classes = {classes!r}")
    else:
        for i, c in enumerate(classes):
            w = f"{where}.classes[{i}]"
            if not isinstance(c.get("name"), str) or not c["name"]:
                errors.append(f"{path}: {w}: name = {c.get('name')!r}")
            for k in ("ues", "crossings"):
                if not nonneg_int(c.get(k)):
                    errors.append(f"{path}: {w}: {k} = {c.get(k)!r}")
            for k in ("measured_rate_hz", "predicted_rate_hz", "mean_leg_m"):
                v = c.get(k)
                if not isinstance(v, (int, float)) or isinstance(v, bool) \
                        or v < 0:
                    errors.append(f"{path}: {w}: {k} = {v!r}")
            if not isinstance(c.get("validate"), bool):
                errors.append(f"{path}: {w}: validate = "
                              f"{c.get('validate')!r}, want bool")
    if mob.get("rate_validated") is True and \
            isinstance(dev, (int, float)) and \
            isinstance(mob.get("rate_tolerance"), (int, float)) and \
            dev > mob["rate_tolerance"]:
        errors.append(f"{path}: {where}: worst_rate_deviation {dev!r} "
                      f"exceeds rate_tolerance {mob['rate_tolerance']!r}")
    sweep = []
    for i, row in enumerate(doc.get("rows", [])):
        where = f"rows[{i}]"
        if "handover_pct_ms" not in row:
            errors.append(f"{path}: {where}: missing handover_pct_ms")
        if row.get("counters", {}).get("core.ryw_violations", 0) != 0:
            errors.append(f"{path}: {where}: RYW violations under "
                          f"mobility+chaos")
        if row.get("system") == "commuter-crossing":
            sweep.append((i, row))
        elif row.get("system") == "edge-pingpong":
            pairs = row.get("pingpong_pairs")
            if not nonneg_int(pairs) or pairs == 0:
                errors.append(f"{path}: {where}: pingpong_pairs = {pairs!r}")
            if not nonneg_int(row.get("suppressed_excursions")):
                errors.append(f"{path}: {where}: suppressed_excursions = "
                              f"{row.get('suppressed_excursions')!r}")
    if len(sweep) < 2:
        errors.append(f"{path}: fewer than two commuter-crossing rows — "
                      f"no cross-thread determinism evidence")
        return
    ref_i, ref = sweep[0]
    for i, row in sweep[1:]:
        for key in ("counters", "events_executed", "handover_pct_ms",
                    "windows"):
            if row.get(key) != ref.get(key):
                errors.append(
                    f"{path}: rows[{i}].{key} (threads="
                    f"{row.get('threads')!r}) differs from rows[{ref_i}] "
                    f"(threads={ref.get('threads')!r}) — thread sweep not "
                    f"bit-identical")


def check_saturation(path, doc, errors):
    config = doc.get("config", {})
    if not isinstance(config.get("knee_pps"), (int, float)) or \
            config.get("knee_pps", 0) <= 0:
        errors.append(f"{path}: config.knee_pps = {config.get('knee_pps')!r}")
    capacity = config.get("queue_capacity")
    if not nonneg_int(capacity) or capacity == 0:
        errors.append(f"{path}: config.queue_capacity = {capacity!r}")
        return
    bound = 2 * capacity  # non-UE-control traffic is never shed
    controlled = [r for r in doc.get("rows", [])
                  if r.get("system") == "overload-control"]
    baseline = [r for r in doc.get("rows", [])
                if r.get("system") == "baseline-unbounded"]
    if not controlled:
        errors.append(f"{path}: no overload-control rows")
        return
    for row in controlled:
        where = f"overload-control x={row.get('x')!r}"
        for k in ("offered_pps", "completion_rate", "attach_shed_rate",
                  "peak_cta_depth", "peak_cpf_depth", "peak_rss_bytes"):
            if k not in row:
                errors.append(f"{path}: {where}: missing '{k}'")
        if row.get("counters", {}).get("core.ryw_violations", 0) != 0:
            errors.append(f"{path}: {where}: RYW violations under overload")
        if row.get("completion_rate", 0) < 0.99:
            errors.append(f"{path}: {where}: completion "
                          f"{row.get('completion_rate')!r} < 0.99")
        peak = max(row.get("peak_cta_depth", 0), row.get("peak_cpf_depth", 0))
        if peak > bound:
            errors.append(f"{path}: {where}: peak depth {peak} exceeds "
                          f"2x capacity ({bound}) — queues not bounded")
        if not nonneg_int(row.get("peak_rss_bytes")) or \
                row.get("peak_rss_bytes") == 0:
            errors.append(f"{path}: {where}: peak_rss_bytes = "
                          f"{row.get('peak_rss_bytes')!r}")
    top = max(controlled, key=lambda r: r.get("x", 0))
    if top.get("counters", {}).get("core.attach_sheds", 0) == 0:
        errors.append(f"{path}: 2x-knee row shed no attaches — the sweep "
                      f"never crossed the knee")
    if not baseline:
        errors.append(f"{path}: no baseline-unbounded row")
    for row in baseline:
        peak = max(row.get("peak_cta_depth", 0), row.get("peak_cpf_depth", 0))
        if peak <= bound:
            errors.append(f"{path}: baseline peak depth {peak} within the "
                          f"controlled bound — contrast lost")


def nonneg_int(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def check_campaign(path, doc, errors):
    for k in ("figure", "title", "config", "per_runtime"):
        if k not in doc:
            errors.append(f"{path}: missing '{k}'")
    for k in ("seeds_run", "mismatches"):
        if not nonneg_int(doc.get(k)):
            errors.append(f"{path}: '{k}' must be a non-negative integer, "
                          f"got {doc.get(k)!r}")
    config = doc.get("config", {})
    for k in ("seeds", "regions", "cpfs_per_region", "ues", "shards",
              "threads"):
        if not nonneg_int(config.get(k)):
            errors.append(f"{path}: config.{k} = {config.get(k)!r}")
    rows = doc.get("per_runtime", [])
    if not rows:
        errors.append(f"{path}: no per_runtime rows")
    for i, row in enumerate(rows):
        where = f"per_runtime[{i}]"
        if not row.get("system"):
            errors.append(f"{path}: {where}: missing 'system'")
        for k in ("violations", "started", "completed", "lost", "unquiesced"):
            if not nonneg_int(row.get(k)):
                errors.append(f"{path}: {where}: {k} = {row.get(k)!r}")
        for k in ("attach_sheds", "overload_drops", "nas_retransmissions",
                  "retx_exhausted"):
            if k in row and not nonneg_int(row[k]):
                errors.append(f"{path}: {where}: {k} = {row[k]!r}")
        for name, v in row.get("recoveries", {}).items():
            if not nonneg_int(v):
                errors.append(f"{path}: {where}: recoveries[{name}] = {v!r}")
    for i, row in enumerate(doc.get("failing_seeds", [])):
        where = f"failing_seeds[{i}]"
        if not nonneg_int(row.get("seed")):
            errors.append(f"{path}: {where}: seed = {row.get('seed')!r}")
        if not row.get("runtime"):
            errors.append(f"{path}: {where}: missing 'runtime'")
        if "reproducer" in row and (
                not isinstance(row["reproducer"], str) or not row["reproducer"]):
            errors.append(f"{path}: {where}: reproducer = "
                          f"{row.get('reproducer')!r}")


def validate(path):
    errors = []
    try:
        doc = extract_json(open(path).read())
    except (ValueError, json.JSONDecodeError) as e:
        return [f"{path}: cannot parse: {e}"], 0
    if "schema" not in doc and "traceEvents" in doc:
        check_trace(path, doc, errors)
        return errors, 0
    if doc.get("schema") == CAMPAIGN_SCHEMA:
        if not isinstance(doc.get("version"), int):
            errors.append(f"{path}: missing integer 'version'")
        check_campaign(path, doc, errors)
        return errors, 0
    if doc.get("schema") != SCHEMA:
        errors.append(f"{path}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    if not isinstance(doc.get("version"), int):
        errors.append(f"{path}: missing integer 'version'")
    for k in ("figure", "title", "config", "rows"):
        if k not in doc:
            errors.append(f"{path}: missing '{k}'")
    if not doc.get("rows"):
        errors.append(f"{path}: no rows")
    version = doc.get("version") if isinstance(doc.get("version"), int) else 1
    config = doc.get("config", {})
    if isinstance(config, dict):
        if "adaptive_lookahead" in config and \
                not isinstance(config["adaptive_lookahead"], bool):
            errors.append(f"{path}: config.adaptive_lookahead = "
                          f"{config['adaptive_lookahead']!r}, want bool")
        if "drain_batch" in config and not nonneg_int(config["drain_batch"]):
            errors.append(f"{path}: config.drain_batch = "
                          f"{config['drain_batch']!r}")
        # Ratio minus one: negative is legal (the sharded run beat the
        # legacy baseline on that sample); only <= -1 is impossible.
        overhead = config.get("sync_overhead_threads1")
        if overhead is not None and (
                not isinstance(overhead, (int, float)) or
                isinstance(overhead, bool) or overhead <= -1):
            errors.append(f"{path}: config.sync_overhead_threads1 = "
                          f"{overhead!r}")
    decomposed = check_rows(path, doc.get("rows", []), errors, version)
    scenario_mode = isinstance(config, dict) and "scenario" in config
    if scenario_mode:
        if isinstance(config["scenario"], dict):
            check_scenario_config(path, config["scenario"], errors)
        else:
            errors.append(f"{path}: config.scenario = "
                          f"{config['scenario']!r}, want object")
    if doc.get("figure") == "fig_saturation" and not scenario_mode:
        check_saturation(path, doc, errors)
    if doc.get("figure") == "fig_scenarios":
        check_scenarios_figure(path, doc, errors)
    if doc.get("figure") == "fig_mobility":
        check_mobility_figure(path, doc, errors)
    return errors, decomposed


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    failed = False
    for path in argv[1:]:
        errors, decomposed = validate(path)
        for e in errors:
            print(f"FAIL {e}")
        if errors:
            failed = True
        else:
            extra = f", {decomposed} decomposed rows" if decomposed else ""
            print(f"OK   {path}{extra}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
