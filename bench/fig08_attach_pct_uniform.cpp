// Fig. 8: attach PCT vs procedures-per-second, uniform traffic.
//
// Paper: Neutrino up to 2.3x better in median PCT below 60 KPPS; existing
// EPC saturates beyond 60 KPPS while Neutrino holds until ~120 KPPS, where
// it is up to 3.4x better.
#include "bench_util.hpp"

using namespace neutrino;

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "fig08", "attach PCT, uniform traffic",
                       "EPC knee ~60KPPS, Neutrino knee ~120KPPS, 2.3-3.4x");
  const std::vector<double> rates =
      report.smoke()
          ? std::vector<double>{40e3}
          : std::vector<double>{40e3, 60e3, 80e3, 100e3, 120e3, 140e3, 160e3};
  const SimTime duration =
      SimTime::milliseconds(report.smoke() ? 100 : 1500);
  report.config()["rates_pps"].make_array();
  for (const double r : rates) report.config()["rates_pps"].push_back(r);
  report.config()["duration_ms"] = duration.ms();
  for (const auto& policy :
       {core::existing_epc_policy(), core::neutrino_policy()}) {
    for (const double rate : rates) {
      bench::ExperimentConfig cfg;
      cfg.policy = policy;
      // The paper's testbed: one region, five CPF instances.
      cfg.topo = core::TopologyConfig{};
      cfg.proto = core::ProtocolConfig{};
      // Attach-time decomposition by hop (--no-decompose to disable).
      cfg.trace_decomposition = report.decompose();
      trace::UniformWorkload workload(rate, duration, {}, /*seed=*/42);
      const auto t = workload.generate(/*ue_population=*/10'000'000,
                                       cfg.topo.total_regions());
      const auto result = bench::run_experiment(cfg, t);
      report.add_pct_row(policy.name, rate,
                         result.metrics.pct[static_cast<std::size_t>(
                             core::ProcedureType::kAttach)],
                         &result);
    }
  }
  return 0;
}
