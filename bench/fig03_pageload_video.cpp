// Fig. 3: page load time and video startup delay vs serialization scheme.
//
// Paper (§3.2, §6.6): a stationary idle UE starting a web-browsing or
// video-streaming app must first run a service request; startup latency is
// a function of the service-request PCT. Switching ASN.1 for the faster
// serialization improves video startup by up to 37x and PLT by up to 3.2x
// across 180K..300K active users per second.
//
// The two curves differ ONLY in wire format (both run the plain EPC
// pipeline): the figure isolates the serialization effect.
#include "apps/deadline_app.hpp"
#include "bench_util.hpp"

using namespace neutrino;

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "fig03",
                       "page load time / video startup delay",
                       "faster serialization: up to 3.2x PLT, 37x video");
  auto asn1 = core::existing_epc_policy();
  asn1.name = "ASN.1";
  auto fast = core::existing_epc_policy();
  fast.name = "FasterSerialization";
  fast.wire_format = ser::WireFormat::kOptimizedFlatBuffers;

  const apps::StartupModel startup;
  const std::vector<double> rates =
      report.smoke() ? std::vector<double>{180e3}
                     : std::vector<double>{180e3, 200e3, 220e3, 240e3,
                                           260e3, 280e3, 300e3};
  const SimTime duration = SimTime::milliseconds(report.smoke() ? 100 : 800);
  report.config()["rates_pps"].make_array();
  for (const double r : rates) report.config()["rates_pps"].push_back(r);
  report.config()["duration_ms"] = duration.ms();
  for (const auto& policy : {asn1, fast}) {
    for (const double rate : rates) {
      bench::ExperimentConfig cfg;
      cfg.policy = policy;
      const auto population = static_cast<std::uint64_t>(rate * 1.2);
      cfg.preattached_ues = population;
      trace::ProcedureMix mix{.service_request = 1.0};
      trace::UniformWorkload workload(rate, duration, mix, /*seed=*/42);
      const auto t = workload.generate(population, cfg.topo.total_regions());
      const auto result = bench::run_experiment(cfg, t);
      const auto& pct = result.metrics.pct[static_cast<std::size_t>(
          core::ProcedureType::kServiceRequest)];
      if (pct.empty()) continue;
      const double video_s = startup.video_startup_ms(pct.median()) / 1e3;
      const double page_s = startup.page_load_ms(pct.median()) / 1e3;
      std::printf(
          "fig03\t%s\t%.0f\tsr_pct_ms=%.3f\tvideo_startup_s=%.3f\t"
          "page_load_s=%.3f\n",
          std::string(policy.name).c_str(), rate, pct.median(), video_s,
          page_s);
      obs::Json& row = report.new_row(policy.name);
      row["x"] = rate;
      row["sr_pct_ms"] = obs::summary_json(pct);
      row["video_startup_s"] = video_s;
      row["page_load_s"] = page_s;
      bench::Report::attach_result(row, result);
    }
  }
  return 0;
}
