// Fig. 13: deadline misses for a self-driving car under mobility.
//
// Paper (§6.6): CARLA-driven client, 1 kHz uplink sensor stream, 100 ms
// decision budget [55]; single-handover and multiple-handover (5 min at
// 60 mph, Fig. 12 BS spacing) scenarios with 50K..500K active users of
// background signaling load. Neutrino misses up to 2.8x fewer deadlines.
//
// Substitution (DESIGN.md §2): CARLA is replaced by the deadline-stream
// model in src/apps — misses are a function of the data-path outage
// windows the simulated control plane produces.
#include "mobility_app_scenario.hpp"

using namespace neutrino;

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "fig13",
                       "self-driving deadline misses (100 ms budget)",
                       "Neutrino up to 2.8x fewer misses");
  const std::vector<std::uint64_t> counts =
      report.smoke()
          ? std::vector<std::uint64_t>{50'000}
          : std::vector<std::uint64_t>{50'000, 100'000, 200'000, 500'000};
  bench::run_mobility_app_scenario(report, "fig13", "single-HO",
                                   apps::DeadlineApp::kSelfDrivingDeadline(),
                                   counts, /*handovers=*/1);
  bench::run_mobility_app_scenario(report, "fig13", "multi-HO",
                                   apps::DeadlineApp::kSelfDrivingDeadline(),
                                   counts, /*handovers=*/8);
  return 0;
}
