// Fig. 9: attach PCT with synchronized (bursty IoT) control traffic.
//
// Paper: queues build immediately for both systems; Neutrino stays up to
// 2x better in PCT across 10K..2M simultaneously-arriving users.
#include "bench_util.hpp"

using namespace neutrino;

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "fig09", "attach PCT, bursty IoT traffic",
                       "Neutrino up to 2x better, 10K..2M active users");
  const std::vector<std::uint64_t> user_counts =
      report.smoke()
          ? std::vector<std::uint64_t>{10'000}
          : std::vector<std::uint64_t>{10'000,  50'000,    100'000,
                                       500'000, 1'000'000, 2'000'000};
  report.config()["user_counts"].make_array();
  for (const auto u : user_counts) report.config()["user_counts"].push_back(u);
  for (const auto& policy :
       {core::existing_epc_policy(), core::neutrino_policy()}) {
    for (const std::uint64_t users : user_counts) {
      bench::ExperimentConfig cfg;
      cfg.policy = policy;
      cfg.drain = SimTime::seconds(600);  // let the burst fully drain
      cfg.trace_decomposition = report.decompose();
      trace::BurstyWorkload workload(users, SimTime::milliseconds(100),
                                     /*seed=*/42);
      const auto t = workload.generate();
      const auto result = bench::run_experiment(cfg, t);
      report.add_pct_row(policy.name, static_cast<double>(users),
                         result.metrics.pct[static_cast<std::size_t>(
                             core::ProcedureType::kAttach)],
                         &result);
    }
  }
  return 0;
}
