// Fig. 9: attach PCT with synchronized (bursty IoT) control traffic.
//
// Paper: queues build immediately for both systems; Neutrino stays up to
// 2x better in PCT across 10K..2M simultaneously-arriving users.
#include "bench_util.hpp"

using namespace neutrino;

int main() {
  bench::print_header("fig09", "attach PCT, bursty IoT traffic",
                      "Neutrino up to 2x better, 10K..2M active users");
  const std::uint64_t user_counts[] = {10'000,  50'000,    100'000,
                                       500'000, 1'000'000, 2'000'000};
  for (const auto& policy :
       {core::existing_epc_policy(), core::neutrino_policy()}) {
    for (const std::uint64_t users : user_counts) {
      bench::ExperimentConfig cfg;
      cfg.policy = policy;
      cfg.drain = SimTime::seconds(600);  // let the burst fully drain
      trace::BurstyWorkload workload(users, SimTime::milliseconds(100),
                                     /*seed=*/42);
      const auto t = workload.generate();
      const auto result = bench::run_experiment(cfg, t);
      bench::print_pct_row(
          "fig09", policy.name, static_cast<double>(users),
          result.metrics.pct[static_cast<std::size_t>(
              core::ProcedureType::kAttach)]);
    }
  }
  return 0;
}
