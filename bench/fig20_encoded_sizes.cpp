// Fig. 20: encoded message sizes — Optimized FlatBuffers vs FlatBuffers vs
// ASN.1, for real S1 protocol messages.
//
// Paper (§6.7.4): FlatBuffers adds up to ~300 bytes of metadata over
// ASN.1 PER; the svtable optimization saves up to 32 bytes per message.
#include <cstdio>

#include "bench_util.hpp"
#include "s1ap/samples.hpp"
#include "serialize/codec.hpp"

using namespace neutrino;

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "fig20",
                       "encoded buffer sizes, real S1 protocol messages",
                       "FBs <= ASN.1 + ~300B; svtable saves up to 32B");
  for (auto& named : s1ap::samples::figure19_messages()) {
    const auto asn1 = ser::encode(ser::WireFormat::kAsn1Per, named.pdu).size();
    const auto fbs =
        ser::encode(ser::WireFormat::kFlatBuffers, named.pdu).size();
    const auto opt =
        ser::encode(ser::WireFormat::kOptimizedFlatBuffers, named.pdu).size();
    std::printf(
        "fig20\t%-28s\tasn1_B=%zu\tfbs_B=%zu\toptfbs_B=%zu\t"
        "fbs_overhead_B=%zu\tsvtable_saving_B=%zu\n",
        std::string(named.name).c_str(), asn1, fbs, opt, fbs - asn1,
        fbs - opt);
    obs::Json& row = report.new_row(named.name);
    row["asn1_bytes"] = static_cast<std::uint64_t>(asn1);
    row["fbs_bytes"] = static_cast<std::uint64_t>(fbs);
    row["optfbs_bytes"] = static_cast<std::uint64_t>(opt);
    row["fbs_overhead_bytes"] = static_cast<std::uint64_t>(fbs - asn1);
    row["svtable_saving_bytes"] = static_cast<std::uint64_t>(fbs - opt);
  }
  return 0;
}
