// Shared real-measurement helpers for the serialization figures (18-20).
//
// These are *measurements of the real codecs*, not simulations. Each
// format is exercised the way its applications use it: sequential formats
// parse into structs; FlatBuffers is consumed through accessors without
// materialization (see FlatBufAccessor).
#pragma once

#include <chrono>
#include <cstdio>

#include "serialize/codec.hpp"

namespace neutrino::bench {

inline std::uint64_t codec_sink = 0;

template <ser::FieldStruct M>
void encode_decode_once(ser::WireFormat format, const M& msg) {
  const Bytes encoded = ser::encode(format, msg);
  codec_sink += encoded.size();
  if (format == ser::WireFormat::kFlatBuffers ||
      format == ser::WireFormat::kOptimizedFlatBuffers) {
    const auto checksum = ser::FlatBufAccessor::access_all<M>(
        encoded, format == ser::WireFormat::kFlatBuffers
                     ? ser::FlatBufMode::kStandard
                     : ser::FlatBufMode::kOptimized);
    codec_sink += checksum.is_ok() ? *checksum : 0;
  } else {
    const auto decoded = ser::decode<M>(format, encoded);
    codec_sink += decoded.is_ok() ? 1u : 0u;
  }
}

/// Best-of-batches encode+decode nanoseconds (rejects scheduler noise).
template <ser::FieldStruct M>
double measure_encode_decode_ns(ser::WireFormat format, const M& msg,
                                int iters = 3000) {
  using Clock = std::chrono::steady_clock;
  for (int i = 0; i < iters / 4; ++i) encode_decode_once(format, msg);
  double best = 1e18;
  for (int batch = 0; batch < 5; ++batch) {
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) encode_decode_once(format, msg);
    const auto t1 = Clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::nano>(t1 - t0).count() /
                        iters);
  }
  return best;
}

}  // namespace neutrino::bench
