// Fig. 15: effect of the state-synchronization scheme on attach PCT.
//
// Paper (§6.7.1): per-message replication has the highest median PCT
// (frequent state locking for check-pointing); per-procedure replication
// costs only slightly more than no replication — the trade-off Neutrino
// picks.
#include "bench_util.hpp"

using namespace neutrino;

int main(int argc, char** argv) {
  bench::Report report(
      argc, argv, "fig15", "attach PCT by state-synchronization scheme",
      "PerMsg worst; PerProc barely above NoRep");
  auto no_rep = core::neutrino_policy();
  no_rep.name = "NoRep";
  no_rep.sync_mode = core::SyncMode::kNone;
  no_rep.cta_message_logging = false;
  no_rep.num_backups = 0;
  auto per_msg = core::neutrino_policy();
  per_msg.name = "PerMsgRep";
  per_msg.sync_mode = core::SyncMode::kPerMessage;
  auto per_proc = core::neutrino_policy();
  per_proc.name = "PerProcRep";

  const std::vector<double> rates =
      report.smoke() ? std::vector<double>{40e3}
                     : std::vector<double>{20e3, 40e3, 60e3, 80e3, 100e3};
  const SimTime duration =
      SimTime::milliseconds(report.smoke() ? 100 : 1000);
  report.config()["rates_pps"].make_array();
  for (const double r : rates) report.config()["rates_pps"].push_back(r);
  report.config()["duration_ms"] = duration.ms();
  for (const auto& policy : {no_rep, per_msg, per_proc}) {
    for (const double rate : rates) {
      bench::ExperimentConfig cfg;
      cfg.policy = policy;
      cfg.trace_decomposition = report.decompose();
      trace::UniformWorkload workload(rate, duration, {}, /*seed=*/42);
      const auto t = workload.generate(static_cast<std::uint64_t>(rate * 2),
                                       cfg.topo.total_regions());
      const auto result = bench::run_experiment(cfg, t);
      report.add_pct_row(policy.name, rate,
                         result.metrics.pct[static_cast<std::size_t>(
                             core::ProcedureType::kAttach)],
                         &result);
    }
  }
  return 0;
}
