// Shared driver for the §6.6 mobility-application studies (Figs. 13, 14):
// background signaling load + one observed UE executing handovers; deadline
// misses derive from the observed UE's data-path outage windows.
#pragma once

#include <algorithm>

#include "apps/deadline_app.hpp"
#include "bench_util.hpp"
#include "trace/mobility.hpp"

namespace neutrino::bench {

inline void run_mobility_app_scenario(Report& report, const char* figure,
                                      const char* scenario, SimTime deadline,
                                      std::span<const std::uint64_t> counts,
                                      int handovers) {
  const SimTime window =
      SimTime::milliseconds(report.smoke() ? 1000 : 6000);
  for (const auto& policy :
       {core::existing_epc_policy(), core::neutrino_policy()}) {
    for (const std::uint64_t users : counts) {
      ExperimentConfig cfg;
      cfg.policy = policy;
      cfg.topo.l1_per_l2 = 4;
      cfg.topo.latency = testbed_latencies();
      cfg.preattached_ues = users + 1;
      // Background signaling: one service request per active user across
      // the window (the load mobility competes with).
      trace::ProcedureMix mix{.service_request = 1.0};
      // Load runs for the whole drive so every handover competes with it
      // (the paper's 60 s runs keep load and mobility concurrent).
      trace::UniformWorkload background(static_cast<double>(users), window,
                                        mix, /*seed=*/42);
      auto t = background.generate(users, cfg.topo.total_regions());

      // (at, ue, type) total order: a non-stable sort keyed on `at` alone
      // leaves equal-timestamp records in unspecified order, breaking the
      // bitwise-determinism contract.
      trace::sort_records(t);

      // The observed vehicle/headset: UE id `users`. The paper's 5-minute
      // 60 mph drive (Fig. 12) is time-compressed into the simulated
      // window; handovers chain back-to-back (a saturated core delays the
      // next crossing's completion, not its occurrence), alternating
      // region crossings per the drive model.
      const UeId observed{users};
      apps::DeadlineApp app;
      app.deadline = deadline;
      app.radio_gap = SimTime::milliseconds(25);  // LTE retune interruption
      std::uint64_t missed = 0;
      const auto result = run_experiment(
          cfg, t,
          [&](core::System& system, sim::EventLoop& loop) {
            // Driver: issue the next handover as soon as the previous one
            // finished, up to the scenario's count.
            auto driver = std::make_shared<std::function<void(int)>>();
            *driver = [&system, &loop, observed, handovers, driver,
                       regions = cfg.topo.total_regions()](int issued) {
              if (issued >= handovers) return;
              system.frontend().start_procedure(
                  observed,
                  issued % 4 == 3 ? core::ProcedureType::kIntraHandover
                                  : core::ProcedureType::kHandover,
                  static_cast<std::uint32_t>((issued + 1) %
                                             static_cast<std::uint32_t>(
                                                 regions)));
              // Poll for completion, then schedule the next crossing.
              auto poll = std::make_shared<std::function<void()>>();
              *poll = [&system, &loop, observed, issued, driver, poll] {
                if (system.frontend().outages(observed).size() >
                    static_cast<std::size_t>(issued)) {
                  loop.schedule_after(SimTime::milliseconds(50),
                                      [driver, issued] {
                                        (*driver)(issued + 1);
                                      });
                } else {
                  loop.schedule_after(SimTime::milliseconds(20), *poll);
                }
              };
              loop.schedule_after(SimTime::milliseconds(20), *poll);
            };
            loop.schedule_at(SimTime::milliseconds(200),
                             [driver] { (*driver)(0); });
          },
          [&](core::System& system) {
            missed = app.missed_deadlines(system.frontend().outages(observed));
          });
      std::printf("%s\t%s\t%s\t%llu\tmissed=%llu\n", figure, scenario,
                  std::string(policy.name).c_str(),
                  static_cast<unsigned long long>(users),
                  static_cast<unsigned long long>(missed));
      obs::Json& row = report.new_row(policy.name);
      row["scenario"] = scenario;
      row["x"] = users;
      row["handovers"] = handovers;
      row["deadline_ms"] = deadline.ms();
      row["missed_deadlines"] = missed;
      Report::attach_result(row, result);
    }
  }
}

}  // namespace neutrino::bench
