// Scale: million-UE attach + service-request storm, simulator throughput.
//
// Not a figure from the paper — this is the repo's perf gate. The ROADMAP
// north star ("millions of users, as fast as the hardware allows") makes
// simulator throughput the binding constraint on every storm experiment;
// this bench pins it as events/sec, procedures/sec and peak RSS so later
// PRs have a trajectory to beat (BENCH_scale.json baseline).
//
// Workload: every UE attaches during a bursty storm window, then issues
// one service request in a second wave — the §6.1 bursty IoT pattern at
// population scale. PCT accounting runs in constant-memory streaming mode
// (no per-procedure sample retention). The run fails (non-zero exit) if
// any procedure fails to complete or a Read-your-Writes violation occurs.
#include <cinttypes>
#include <optional>
#include <thread>

#include "bench_util.hpp"
#include "obs/throughput.hpp"

using namespace neutrino;

namespace {

/// Streaming recorders have no order statistics: emit count/mean/max only
/// (validate_report.py's percentile check keys off "p50", absent here).
obs::Json streaming_summary(const LatencyRecorder& r) {
  obs::Json j;
  j["count"] = r.count();
  j["mean"] = r.mean();
  j["max"] = r.empty() ? 0.0 : r.max();
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
  bench::Report report("scale", "million-UE storm: simulator throughput",
                       "simulation-core perf gate (events/sec baseline)",
                       opts);
  // --scenario=NAME swaps the built-in two-wave storm for a traffic-engine
  // scenario (same average rate, same population); unknown names exit 2.
  const traffic::ScenarioInfo* scen = bench::require_scenario(opts.scenario);
  const std::uint64_t n_ues =
      opts.ues != 0 ? opts.ues : (report.smoke() ? 100'000 : 1'000'000);
  // ~17 KPPS offered load: below the EPC saturation knee (Fig. 8), so the
  // measurement is simulator throughput, not modeled queueing collapse.
  const SimTime attach_window =
      SimTime::seconds(static_cast<std::int64_t>(n_ues / 16'667 + 1));
  const SimTime wave_gap = SimTime::seconds(5);

  report.config()["ues"] = n_ues;
  report.config()["attach_window_s"] = attach_window.sec();
  report.config()["wave_gap_s"] = wave_gap.sec();
  // Interpreting the sharded rows needs the machine's parallelism: on a
  // single-core host the threads>1 rows measure synchronization overhead,
  // not speedup (results are identical either way; only wall-clock moves).
  report.config()["hardware_threads"] =
      static_cast<std::uint64_t>(std::thread::hardware_concurrency());

  // Scenario generation parameters (scenario mode only): the storm's
  // average rate over the attach window, re-generated per topology because
  // UE homes are ue % regions.
  traffic::ScenarioRequest screq;
  screq.target_pps = 16'667;
  screq.duration = attach_window;
  screq.population = n_ues;
  screq.seed = 42;

  // Build the offered trace. Default: the two-wave storm — attach burst,
  // then a service-request storm — byte-identical to what this bench has
  // always offered when --scenario= is unset.
  std::vector<trace::TraceRecord> t;
  std::optional<traffic::GeneratedTraffic> scen_traffic;
  if (scen != nullptr) {
    screq.regions = static_cast<int>(core::TopologyConfig{}.total_regions());
    scen_traffic = traffic::generate_scenario(opts.scenario, screq);
    t = scen_traffic->records;
    bench::echo_scenario_config(report.config(), *scen, screq);
  } else {
    trace::BurstyWorkload attaches(n_ues, attach_window, /*seed=*/42);
    t = attaches.generate();
    t.reserve(t.size() * 2);
    Rng rng(1337);
    const SimTime base = attach_window + wave_gap;
    const std::size_t n_attach = t.size();
    for (std::uint64_t ue = 0; ue < n_ues; ++ue) {
      trace::TraceRecord rec;
      rec.at = base + SimTime::nanoseconds(static_cast<std::int64_t>(
                          rng.next_double() *
                          static_cast<double>(attach_window.ns())));
      rec.ue = UeId(ue);
      rec.type = core::ProcedureType::kServiceRequest;
      t.push_back(rec);
    }
    std::sort(t.begin() + static_cast<std::ptrdiff_t>(n_attach), t.end(),
              trace::record_before);
  }

  obs::RssMeter rss_meter;
  report.config()["rss_baseline_bytes"] = rss_meter.baseline_bytes();
  report.config()["telemetry"] = opts.telemetry;

  bool ok = true;
  for (const auto& policy :
       {core::existing_epc_policy(), core::neutrino_policy()}) {
    bench::ExperimentConfig cfg;
    cfg.policy = policy;
    cfg.topo = core::TopologyConfig{};  // the paper's 1-region testbed
    cfg.proto = core::ProtocolConfig{};
    cfg.streaming_pct = true;  // constant-memory PCT at storm scale
    cfg.telemetry_window = opts.telemetry_window();
    if (scen != nullptr && scen->preattach) cfg.preattached_ues = n_ues;
    rss_meter.begin_run();
    auto result = bench::run_experiment(cfg, t);  // pct_for is non-const
    const std::size_t rss_delta = rss_meter.run_delta_bytes();

    const std::uint64_t started = result.metrics.procedures_started;
    const std::uint64_t completed = result.metrics.procedures_completed;
    const std::uint64_t ryw = result.metrics.ryw_violations;
    const double events_per_sec =
        result.wall_seconds > 0
            ? static_cast<double>(result.events_executed) / result.wall_seconds
            : 0.0;
    const double procs_per_sec =
        result.wall_seconds > 0
            ? static_cast<double>(completed) / result.wall_seconds
            : 0.0;
    const std::size_t rss = obs::peak_rss_bytes();

    std::printf("scale\t%s\tues=%" PRIu64 "\tevents=%" PRIu64
                "\twall_s=%.3f\tevents_per_sec=%.0f\tprocs_per_sec=%.0f"
                "\tpeak_rss_mb=%.1f\tcompleted=%" PRIu64 "/%" PRIu64
                "\tryw=%" PRIu64 "\n",
                std::string(policy.name).c_str(), n_ues,
                result.events_executed, result.wall_seconds, events_per_sec,
                procs_per_sec, static_cast<double>(rss) / (1024.0 * 1024.0),
                completed, started, ryw);

    obs::Json& row = report.new_row(policy.name);
    row["ues"] = n_ues;
    row["events_executed"] = result.events_executed;
    row["wall_seconds"] = result.wall_seconds;
    row["events_per_sec"] = events_per_sec;
    row["procedures_per_sec"] = procs_per_sec;
    row["peak_rss_bytes"] = rss;
    row["peak_rss_delta_bytes"] = static_cast<std::uint64_t>(rss_delta);
    row["attach_ms"] = streaming_summary(result.metrics.pct_for(
        core::ProcedureType::kAttach));
    row["service_request_ms"] = streaming_summary(result.metrics.pct_for(
        core::ProcedureType::kServiceRequest));
    if (scen != nullptr) {
      row["scenario"] = opts.scenario;
      bench::attach_arrivals(row, *scen_traffic, screq.duration);
    }
    bench::Report::attach_result(row, result);

    if (completed != started || ryw != 0) {
      std::fprintf(stderr,
                   "scale_throughput: FAILED for %s: completed %" PRIu64
                   " of %" PRIu64 " procedures, ryw_violations=%" PRIu64 "\n",
                   std::string(policy.name).c_str(), completed, started, ryw);
      ok = false;
    }
  }

  // Sharded-runtime rows (--threads=1,2,..., optional --shards=N): the
  // same two-wave storm over a topology partitioned one region per shard
  // (UE homes are ue % regions, so load spreads evenly). Cross-shard
  // traffic comes from Neutrino's level-2 remote backups. Results are
  // deterministic per shard count; only wall-clock varies with threads.
  if (!opts.threads.empty()) {
    const std::uint32_t shards = opts.effective_shards();
    bench::ExperimentConfig cfg;
    cfg.policy = core::neutrino_policy();
    cfg.topo = core::TopologyConfig{};
    cfg.topo.l1_per_l2 = static_cast<int>(shards);  // one region per shard
    cfg.proto = core::ProtocolConfig{};
    cfg.streaming_pct = true;
    cfg.telemetry_window = opts.telemetry_window();
    cfg.adaptive_lookahead = opts.adaptive_lookahead;
    cfg.drain_batch = opts.drain_batch;
    // Scenario mode regenerates the trace for the partitioned topology
    // (UE homes are ue % regions, so the shard count changes the homing);
    // the generator itself is single-threaded and deterministic, so every
    // thread count replays the identical record stream.
    std::optional<traffic::GeneratedTraffic> sharded_traffic;
    if (scen != nullptr) {
      screq.regions = static_cast<int>(cfg.topo.total_regions());
      sharded_traffic = traffic::generate_scenario(opts.scenario, screq);
      cfg.preattached_ues = scen->preattach ? n_ues : 0;
    }
    const std::vector<trace::TraceRecord>& ts =
        sharded_traffic ? sharded_traffic->records : t;
    report.config()["shards"] = shards;
    report.config()["sharded_regions"] = cfg.topo.total_regions();
    report.config()["adaptive_lookahead"] = opts.adaptive_lookahead;
    report.config()["drain_batch"] =
        static_cast<std::uint64_t>(opts.drain_batch);

    // Legacy single-threaded System over the *same partitioned topology*:
    // the honest denominator for shard-sync overhead. Comparing sharded
    // rows against the 1-region row above would conflate the topology
    // change (more regions, remote backups) with the runtime's window/
    // barrier/channel machinery; this row isolates the latter. check.sh's
    // perf gate reads it via "sharded_baseline": true.
    double baseline_wall = 0.0;
    {
      rss_meter.begin_run();
      auto result = bench::run_experiment(cfg, ts);
      const std::size_t rss_delta = rss_meter.run_delta_bytes();
      baseline_wall = result.wall_seconds;
      const double events_per_sec =
          result.wall_seconds > 0
              ? static_cast<double>(result.events_executed) /
                    result.wall_seconds
              : 0.0;
      std::printf("scale\t%s\tsharded-topo-baseline\tues=%" PRIu64
                  "\tevents=%" PRIu64 "\twall_s=%.3f\tevents_per_sec=%.0f\n",
                  std::string(cfg.policy.name).c_str(), n_ues,
                  result.events_executed, result.wall_seconds,
                  events_per_sec);
      obs::Json& row = report.new_row(cfg.policy.name);
      row["ues"] = n_ues;
      row["sharded_baseline"] = true;
      row["events_executed"] = result.events_executed;
      row["wall_seconds"] = result.wall_seconds;
      row["events_per_sec"] = events_per_sec;
      row["peak_rss_bytes"] = obs::peak_rss_bytes();
      row["peak_rss_delta_bytes"] = static_cast<std::uint64_t>(rss_delta);
      bench::Report::attach_result(row, result);
      if (result.metrics.procedures_completed !=
              result.metrics.procedures_started ||
          result.metrics.ryw_violations != 0) {
        std::fprintf(stderr, "scale_throughput: FAILED sharded-topo "
                             "baseline\n");
        ok = false;
      }
    }

    double threads1_wall = 0.0;
    for (std::size_t ti = 0; ti < opts.threads.size(); ++ti) {
      const std::uint32_t threads = opts.threads[ti];
      // --trace-out: the last (widest) sharded row logs its conservative
      // windows and exports them as Perfetto shard tracks.
      cfg.record_trace_events =
          !opts.trace_out.empty() && ti + 1 == opts.threads.size();
      // Wall-clock phase attribution for this row (schedule / dispatch /
      // barrier-wait / channel-drain / codec). Lives only in the row's
      // "profiler" section — never in determinism-compared output.
      obs::PhaseProfiler profiler(std::max<std::size_t>(shards, threads));
      rss_meter.begin_run();
      auto result =
          bench::run_sharded_experiment(cfg, ts, shards, threads, &profiler);
      const std::size_t rss_delta = rss_meter.run_delta_bytes();
      if (cfg.record_trace_events) {
        bench::write_trace_file(
            opts.trace_out,
            obs::perfetto_trace(result.tracer.get(), result.window_log),
            &profiler);
      }
      const std::uint64_t started = result.metrics.procedures_started;
      const std::uint64_t completed = result.metrics.procedures_completed;
      const std::uint64_t ryw = result.metrics.ryw_violations;
      const double events_per_sec =
          result.wall_seconds > 0
              ? static_cast<double>(result.events_executed) /
                    result.wall_seconds
              : 0.0;
      const double procs_per_sec =
          result.wall_seconds > 0
              ? static_cast<double>(completed) / result.wall_seconds
              : 0.0;
      const std::size_t rss = obs::peak_rss_bytes();

      std::printf("scale\t%s\tshards=%u\tthreads=%u\tues=%" PRIu64
                  "\tevents=%" PRIu64 "\twindows=%" PRIu64
                  "\tcross=%" PRIu64
                  "\twall_s=%.3f\tevents_per_sec=%.0f\tprocs_per_sec=%.0f"
                  "\tpeak_rss_mb=%.1f\tcompleted=%" PRIu64 "/%" PRIu64
                  "\tryw=%" PRIu64 "\n",
                  std::string(cfg.policy.name).c_str(), shards, threads,
                  n_ues, result.events_executed, result.windows,
                  result.cross_shard_messages, result.wall_seconds,
                  events_per_sec, procs_per_sec,
                  static_cast<double>(rss) / (1024.0 * 1024.0), completed,
                  started, ryw);

      obs::Json& row = report.new_row(cfg.policy.name);
      row["ues"] = n_ues;
      row["events_executed"] = result.events_executed;
      row["wall_seconds"] = result.wall_seconds;
      row["events_per_sec"] = events_per_sec;
      row["procedures_per_sec"] = procs_per_sec;
      row["peak_rss_bytes"] = rss;
      row["peak_rss_delta_bytes"] = static_cast<std::uint64_t>(rss_delta);
      row["attach_ms"] = streaming_summary(result.metrics.pct_for(
          core::ProcedureType::kAttach));
      row["service_request_ms"] = streaming_summary(result.metrics.pct_for(
          core::ProcedureType::kServiceRequest));
      row["adaptive_lookahead"] = opts.adaptive_lookahead;
      row["drain_batch"] = static_cast<std::uint64_t>(opts.drain_batch);
      if (scen != nullptr) {
        row["scenario"] = opts.scenario;
        bench::attach_arrivals(row, *sharded_traffic, screq.duration);
      }
      bench::Report::attach_result(row, result);
      bench::Report::attach_profiler(row, profiler);
      if (threads == 1) threads1_wall = result.wall_seconds;

      if (completed != started || ryw != 0) {
        std::fprintf(stderr,
                     "scale_throughput: FAILED sharded (shards=%u threads=%u)"
                     ": completed %" PRIu64 " of %" PRIu64
                     " procedures, ryw_violations=%" PRIu64 "\n",
                     shards, threads, completed, started, ryw);
        ok = false;
      }
    }
    // Window-policy A/B at threads=1: one extra row with the adaptive
    // setting flipped, so BENCH_scale.json always carries both the
    // adaptive-on and adaptive-off numbers for this shard count.
    if (shards > 1) {
      bench::ExperimentConfig flipped = cfg;
      flipped.record_trace_events = false;
      flipped.adaptive_lookahead = !opts.adaptive_lookahead;
      rss_meter.begin_run();
      auto result = bench::run_sharded_experiment(flipped, ts, shards, 1);
      const std::size_t rss_delta = rss_meter.run_delta_bytes();
      const double events_per_sec =
          result.wall_seconds > 0
              ? static_cast<double>(result.events_executed) /
                    result.wall_seconds
              : 0.0;
      std::printf("scale\t%s\tshards=%u\tthreads=1\tadaptive=%d\tues=%" PRIu64
                  "\tevents=%" PRIu64 "\twindows=%" PRIu64
                  "\twall_s=%.3f\tevents_per_sec=%.0f\n",
                  std::string(flipped.policy.name).c_str(), shards,
                  flipped.adaptive_lookahead ? 1 : 0, n_ues,
                  result.events_executed, result.windows, result.wall_seconds,
                  events_per_sec);
      obs::Json& row = report.new_row(flipped.policy.name);
      row["ues"] = n_ues;
      row["events_executed"] = result.events_executed;
      row["wall_seconds"] = result.wall_seconds;
      row["events_per_sec"] = events_per_sec;
      row["peak_rss_bytes"] = obs::peak_rss_bytes();
      row["peak_rss_delta_bytes"] = static_cast<std::uint64_t>(rss_delta);
      row["adaptive_lookahead"] = flipped.adaptive_lookahead;
      row["drain_batch"] = static_cast<std::uint64_t>(flipped.drain_batch);
      bench::Report::attach_result(row, result);
      if (result.metrics.procedures_completed !=
          result.metrics.procedures_started) {
        std::fprintf(stderr,
                     "scale_throughput: FAILED adaptive-flip row\n");
        ok = false;
      }
    }
    // Shard-sync overhead at one worker thread: the windows/barriers/
    // channels cost with parallel execution factored out. ROADMAP open
    // item 3 targets ≤15%; check.sh gates on this figure.
    if (threads1_wall > 0 && baseline_wall > 0) {
      const double overhead = threads1_wall / baseline_wall - 1.0;
      report.config()["sync_overhead_threads1"] = overhead;
      std::printf("scale\tsync-overhead\tthreads=1\t%.4f\n", overhead);
    }
  }
  report.finish();
  return ok ? 0 : 1;
}
