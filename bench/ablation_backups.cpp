// Ablation: how the number of backup replicas (N, §4.2.2) trades
// failure-free overhead against failure-recovery coverage.
//
// Not a paper figure — DESIGN.md lists replica count as the protocol's
// main provisioning knob; this quantifies it: attach PCT and checkpoint
// traffic without failures, plus the Re-Attach rate when a quarter of the
// CPFs crash mid-run.
#include "bench_util.hpp"

using namespace neutrino;

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "ablation_backups",
                       "replica count N: overhead vs coverage",
                       "n/a (design-choice ablation)");
  const std::vector<int> backup_counts =
      report.smoke() ? std::vector<int>{0, 2} : std::vector<int>{0, 1, 2, 3};
  const SimTime duration =
      SimTime::milliseconds(report.smoke() ? 200 : 1000);
  const double rate = 60e3;
  report.config()["rate_pps"] = rate;
  report.config()["duration_ms"] = duration.ms();
  for (const int backups : backup_counts) {
    auto policy = core::neutrino_policy();
    policy.num_backups = backups;
    if (backups == 0) {
      policy.sync_mode = core::SyncMode::kNone;
      policy.recovery = core::RecoveryMode::kReattach;
    }

    // Failure-free: attach PCT + sync traffic at a moderate load.
    bench::ExperimentConfig cfg;
    cfg.policy = policy;
    cfg.topo.l1_per_l2 = 4;
    cfg.topo.latency = bench::testbed_latencies();
    trace::UniformWorkload workload(rate, duration, {}, /*seed=*/42);
    const auto t = workload.generate(1'000'000, cfg.topo.total_regions());
    const auto clean = bench::run_experiment(cfg, t);
    const auto& pct = clean.metrics.pct[static_cast<std::size_t>(
        core::ProcedureType::kAttach)];

    // Under failures: crash one CPF per region mid-run.
    const SimTime crash_at = SimTime::milliseconds(report.smoke() ? 100 : 500);
    const auto failed = bench::run_experiment(
        cfg, t, [&](core::System& system, sim::EventLoop& loop) {
          for (int region = 0; region < cfg.topo.total_regions(); ++region) {
            const CpfId victim =
                cfg.topo.cpf_at(static_cast<std::uint32_t>(region), 0);
            loop.schedule_at(crash_at,
                             [&system, victim] { system.crash_cpf(victim); });
          }
        });

    std::printf(
        "ablation_backups\tN=%d\tattach_p50_ms=%.3f\tcheckpoints=%llu\t"
        "acks=%llu\tfailure_reattaches=%llu\tfailure_replayed=%llu\t"
        "ryw_violations=%llu\n",
        backups, pct.median(),
        static_cast<unsigned long long>(clean.metrics.checkpoints_sent),
        static_cast<unsigned long long>(clean.metrics.checkpoint_acks),
        static_cast<unsigned long long>(failed.metrics.reattaches),
        static_cast<unsigned long long>(failed.metrics.replays),
        static_cast<unsigned long long>(failed.metrics.ryw_violations));
    obs::Json& row = report.new_row("Neutrino");
    row["x"] = backups;
    row["attach_pct_ms"] = obs::summary_json(pct);
    row["clean"].make_object();
    bench::Report::attach_result(row["clean"], clean);
    row["under_failure"].make_object();
    bench::Report::attach_result(row["under_failure"], failed);
  }
  return 0;
}
