// Fig. 19: encode+decode times for real S1AP messages — Optimized
// FlatBuffers vs FlatBuffers vs ASN.1.
//
// Paper (§6.7.4): up to 5.9x decrease in encode+decode time with
// FlatBuffers over ASN.1, with a further decrease from the svtable
// optimization in some cases.
#include "codec_timing.hpp"
#include "s1ap/samples.hpp"

using namespace neutrino;

int main() {
  std::printf("# fig19 — encode+decode times, real S1 protocol messages\n");
  std::printf("# paper: FBs up to 5.9x faster than ASN.1; OptFBs best\n");
  for (auto& named : s1ap::samples::figure19_messages()) {
    const double asn1 =
        bench::measure_encode_decode_ns(ser::WireFormat::kAsn1Per, named.pdu);
    const double fbs = bench::measure_encode_decode_ns(
        ser::WireFormat::kFlatBuffers, named.pdu);
    const double opt = bench::measure_encode_decode_ns(
        ser::WireFormat::kOptimizedFlatBuffers, named.pdu);
    std::printf(
        "fig19\t%-28s\tasn1_ns=%.0f\tfbs_ns=%.0f\toptfbs_ns=%.0f\t"
        "fbs_speedup=%.2fx\toptfbs_speedup=%.2fx\n",
        std::string(named.name).c_str(), asn1, fbs, opt, asn1 / fbs,
        asn1 / opt);
    std::fflush(stdout);
  }
  std::printf("# checksum=%llu\n",
              static_cast<unsigned long long>(bench::codec_sink));
  return 0;
}
