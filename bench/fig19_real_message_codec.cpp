// Fig. 19: encode+decode times for real S1AP messages — Optimized
// FlatBuffers vs FlatBuffers vs ASN.1.
//
// Paper (§6.7.4): up to 5.9x decrease in encode+decode time with
// FlatBuffers over ASN.1, with a further decrease from the svtable
// optimization in some cases.
#include "bench_util.hpp"
#include "codec_timing.hpp"
#include "s1ap/samples.hpp"

using namespace neutrino;

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "fig19",
                       "encode+decode times, real S1 protocol messages",
                       "FBs up to 5.9x faster than ASN.1; OptFBs best");
  const int iters = report.smoke() ? 300 : 3000;
  report.config()["iters"] = iters;
  for (auto& named : s1ap::samples::figure19_messages()) {
    const double asn1 = bench::measure_encode_decode_ns(
        ser::WireFormat::kAsn1Per, named.pdu, iters);
    const double fbs = bench::measure_encode_decode_ns(
        ser::WireFormat::kFlatBuffers, named.pdu, iters);
    const double opt = bench::measure_encode_decode_ns(
        ser::WireFormat::kOptimizedFlatBuffers, named.pdu, iters);
    std::printf(
        "fig19\t%-28s\tasn1_ns=%.0f\tfbs_ns=%.0f\toptfbs_ns=%.0f\t"
        "fbs_speedup=%.2fx\toptfbs_speedup=%.2fx\n",
        std::string(named.name).c_str(), asn1, fbs, opt, asn1 / fbs,
        asn1 / opt);
    std::fflush(stdout);
    obs::Json& row = report.new_row(named.name);
    row["asn1_ns"] = asn1;
    row["fbs_ns"] = fbs;
    row["optfbs_ns"] = opt;
    row["fbs_speedup"] = asn1 / fbs;
    row["optfbs_speedup"] = asn1 / opt;
  }
  std::printf("# checksum=%llu\n",
              static_cast<unsigned long long>(bench::codec_sink));
  return 0;
}
