// Fig. 11: FastHandover PCT, uniform traffic.
//
// Paper: Neutrino-Proactive improves median handover PCT by up to 7x over
// existing EPC below 60 KPPS (no pre-handover state migration at all);
// Neutrino-Default (migration, but fast serialization) sits in between.
#include "bench_util.hpp"

using namespace neutrino;

int main(int argc, char** argv) {
  bench::Report report(
      argc, argv, "fig11", "inter-CPF handover PCT: proactive geo-replication",
      "Neutrino-Proactive up to 7x over EPC; Default in between");
  auto neutrino_default = core::neutrino_policy();
  neutrino_default.name = "Neutrino-Default";
  neutrino_default.handover = core::HandoverMode::kMigrate;
  auto neutrino_proactive = core::neutrino_policy();
  neutrino_proactive.name = "Neutrino-Proactive";

  const std::vector<double> rates =
      report.smoke()
          ? std::vector<double>{40e3}
          : std::vector<double>{40e3, 60e3, 80e3, 100e3, 120e3, 140e3, 160e3};
  const SimTime duration =
      SimTime::milliseconds(report.smoke() ? 200 : 1000);
  report.config()["rates_pps"].make_array();
  for (const double r : rates) report.config()["rates_pps"].push_back(r);
  report.config()["duration_ms"] = duration.ms();
  for (const auto& policy : {core::existing_epc_policy(), neutrino_default,
                             neutrino_proactive}) {
    for (const double rate : rates) {
      bench::ExperimentConfig cfg;
      cfg.policy = policy;
      cfg.topo.l1_per_l2 = 4;
      cfg.topo.latency = bench::testbed_latencies();
      cfg.trace_decomposition = report.decompose();
      const auto population = static_cast<std::uint64_t>(rate * 1.2);
      cfg.preattached_ues = population;
      trace::ProcedureMix mix{.handover = 1.0};
      trace::UniformWorkload workload(rate, duration, mix, /*seed=*/42);
      const auto t = workload.generate(population, cfg.topo.total_regions());
      const auto result = bench::run_experiment(cfg, t);
      report.add_pct_row(policy.name, rate,
                         result.metrics.pct[static_cast<std::size_t>(
                             core::ProcedureType::kHandover)],
                         &result);
    }
  }
  return 0;
}
