// Fig. 18: encode+decode speedup over ASN.1 vs number of information
// elements, for FlexBuffers / protobuf / Fast-CDR / LCM / FlatBuffers.
//
// Paper (§6.7.4): Fast-CDR and LCM win below ~7 elements; beyond that
// FlatBuffers is the clear winner, with a total speedup of 1.6x..19.2x
// over ASN.1 (all real cellular messages have >= 8 elements).
//
// Real measurement over the from-scratch codecs; the custom message wraps
// each element in an S1AP ProtocolIE (see s1ap/custom_message.hpp).
#include "codec_timing.hpp"
#include "s1ap/custom_message.hpp"

using namespace neutrino;

namespace {

template <std::size_t N>
void row() {
  s1ap::CustomMessage<N> msg;
  msg.fill(42);
  const double asn1 =
      bench::measure_encode_decode_ns(ser::WireFormat::kAsn1Per, msg);
  std::printf("fig18\t%2zu", N);
  std::printf("\tasn1_ns=%.0f", asn1);
  const ser::WireFormat formats[] = {
      ser::WireFormat::kFastCdr,      ser::WireFormat::kLcm,
      ser::WireFormat::kProtobuf,     ser::WireFormat::kFlexBuffers,
      ser::WireFormat::kFlatBuffers,  ser::WireFormat::kOptimizedFlatBuffers,
  };
  for (const auto f : formats) {
    const double t = bench::measure_encode_decode_ns(f, msg);
    std::printf("\t%s=%.2fx", std::string(ser::to_string(f)).c_str(),
                asn1 / t);
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace

int main() {
  std::printf("# fig18 — en/decoding speedup over ASN.1 vs element count\n");
  std::printf("# paper: CDR/LCM best <7 elements, FBs wins beyond, 1.6-19.2x\n");
  row<1>();
  row<3>();
  row<5>();
  row<7>();
  row<9>();
  row<12>();
  row<16>();
  row<20>();
  row<25>();
  row<30>();
  row<35>();
  std::printf("# checksum=%llu\n",
              static_cast<unsigned long long>(bench::codec_sink));
  return 0;
}
