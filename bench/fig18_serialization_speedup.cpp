// Fig. 18: encode+decode speedup over ASN.1 vs number of information
// elements, for FlexBuffers / protobuf / Fast-CDR / LCM / FlatBuffers.
//
// Paper (§6.7.4): Fast-CDR and LCM win below ~7 elements; beyond that
// FlatBuffers is the clear winner, with a total speedup of 1.6x..19.2x
// over ASN.1 (all real cellular messages have >= 8 elements).
//
// Real measurement over the from-scratch codecs; the custom message wraps
// each element in an S1AP ProtocolIE (see s1ap/custom_message.hpp).
#include "bench_util.hpp"
#include "codec_timing.hpp"
#include "s1ap/custom_message.hpp"

using namespace neutrino;

namespace {

template <std::size_t N>
void row(bench::Report& report, int iters) {
  s1ap::CustomMessage<N> msg;
  msg.fill(42);
  const double asn1 =
      bench::measure_encode_decode_ns(ser::WireFormat::kAsn1Per, msg, iters);
  std::printf("fig18\t%2zu", N);
  std::printf("\tasn1_ns=%.0f", asn1);
  obs::Json& json_row = report.new_row("codecs");
  json_row["x"] = static_cast<std::uint64_t>(N);
  json_row["asn1_ns"] = asn1;
  json_row["speedup_over_asn1"].make_object();
  const ser::WireFormat formats[] = {
      ser::WireFormat::kFastCdr,      ser::WireFormat::kLcm,
      ser::WireFormat::kProtobuf,     ser::WireFormat::kFlexBuffers,
      ser::WireFormat::kFlatBuffers,  ser::WireFormat::kOptimizedFlatBuffers,
  };
  for (const auto f : formats) {
    const double t = bench::measure_encode_decode_ns(f, msg, iters);
    std::printf("\t%s=%.2fx", std::string(ser::to_string(f)).c_str(),
                asn1 / t);
    json_row["speedup_over_asn1"][ser::to_string(f)] = asn1 / t;
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report(
      argc, argv, "fig18", "en/decoding speedup over ASN.1 vs element count",
      "CDR/LCM best <7 elements, FBs wins beyond, 1.6-19.2x");
  const int iters = report.smoke() ? 300 : 3000;
  report.config()["iters"] = iters;
  row<1>(report, iters);
  row<3>(report, iters);
  row<5>(report, iters);
  row<7>(report, iters);
  row<9>(report, iters);
  row<12>(report, iters);
  row<16>(report, iters);
  row<20>(report, iters);
  row<25>(report, iters);
  row<30>(report, iters);
  row<35>(report, iters);
  std::printf("# checksum=%llu\n",
              static_cast<unsigned long long>(bench::codec_sink));
  return 0;
}
