// Ablation: the §4.2.4(4) notify grace.
//
// Firing the "replica outdated" notify the instant a second procedure
// starts (the paper's rule as literally written) produces millions of
// notifies when checkpoint ACKs lag under load — the metastable feedback
// DESIGN.md §7 documents. The grace bounds that volume: once it exceeds
// the ACK lag, rule 4 goes quiet. Procedure latency is insensitive either
// way *because* replication traffic runs on the dedicated sync core, and
// correctness is carried by the UE-context version check — both worth
// seeing explicitly.
#include "bench_util.hpp"

using namespace neutrino;

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "ablation_rule4",
                       "rule-4 notify grace vs notify storms",
                       "n/a (design-choice ablation)");
  const std::vector<std::int64_t> graces_ms =
      report.smoke() ? std::vector<std::int64_t>{0, 1000}
                     : std::vector<std::int64_t>{0, 10, 1000, 30000};
  const SimTime duration =
      SimTime::milliseconds(report.smoke() ? 200 : 1500);
  const double rate = report.smoke() ? 200e3 : 550e3;
  report.config()["rate_pps"] = rate;
  report.config()["duration_ms"] = duration.ms();
  for (const std::int64_t grace_ms : graces_ms) {
    bench::ExperimentConfig cfg;
    cfg.policy = core::neutrino_policy();
    cfg.topo.l1_per_l2 = 4;
    cfg.topo.latency = bench::testbed_latencies();
    cfg.proto.rule4_grace = SimTime::milliseconds(grace_ms);
    const std::uint64_t users = 120'000;
    cfg.preattached_ues = users;
    trace::ProcedureMix mix{.service_request = 1.0};
    // Each UE fires several service requests, so rule 4 is exercised by
    // every procedure whose predecessor's ACKs still lag.
    trace::UniformWorkload workload(rate, duration, mix, /*seed=*/42);
    const auto t = workload.generate(users, cfg.topo.total_regions());
    const auto result = bench::run_experiment(cfg, t);
    const auto& pct = result.metrics.pct[static_cast<std::size_t>(
        core::ProcedureType::kServiceRequest)];
    std::printf(
        "ablation_rule4\tgrace_ms=%lld\tsr_p50_ms=%.3f\tsr_p99_ms=%.3f\t"
        "outdated_notifies=%llu\tstate_fetches=%llu\treattaches=%llu\t"
        "ryw_violations=%llu\n",
        static_cast<long long>(grace_ms), pct.median(), pct.p99(),
        static_cast<unsigned long long>(result.metrics.outdated_notifies),
        static_cast<unsigned long long>(result.metrics.state_fetches),
        static_cast<unsigned long long>(result.metrics.reattaches),
        static_cast<unsigned long long>(result.metrics.ryw_violations));
    obs::Json& row = report.new_row("Neutrino");
    row["x"] = grace_ms;
    row["sr_pct_ms"] = obs::summary_json(pct);
    bench::Report::attach_result(row, result);
  }
  return 0;
}
