// Ablation: failure-detection time.
//
// The paper's PCT-under-failure numbers exclude detection time (§6.4).
// This ablation puts it back: CPFs crash *silently* and the CTAs' §4.1
// heartbeat detectors must notice, sweeping the probe interval. Recovery
// PCT ~= 3 x probe interval + the (tiny) replay cost — detection, not
// recovery, dominates end-to-end failover once the protocol is fast.
#include "bench_util.hpp"

using namespace neutrino;

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "ablation_detection",
                       "failure detection time vs recovery PCT",
                       "n/a (quantifies what §6.4 excludes)");
  const std::vector<std::int64_t> probe_intervals_ms =
      report.smoke() ? std::vector<std::int64_t>{5}
                     : std::vector<std::int64_t>{1, 5, 20, 100};
  const SimTime duration =
      SimTime::milliseconds(report.smoke() ? 400 : 1000);
  report.config()["duration_ms"] = duration.ms();
  for (const std::int64_t probe_ms : probe_intervals_ms) {
    bench::ExperimentConfig cfg;
    cfg.policy = core::neutrino_policy();
    cfg.topo.latency = bench::testbed_latencies();
    const double rate = 40e3;
    const auto population = static_cast<std::uint64_t>(rate * 1.2);
    cfg.preattached_ues = population;
    trace::ProcedureMix mix{.service_request = 1.0};
    trace::UniformWorkload workload(rate, duration, mix, /*seed=*/42);
    const auto t = workload.generate(population, cfg.topo.total_regions());
    const int waves = report.smoke() ? 2 : 8;
    const auto result = bench::run_experiment(
        cfg, t, [&](core::System& system, sim::EventLoop& loop) {
          for (int region = 0; region < cfg.topo.total_regions(); ++region) {
            system.cta(static_cast<std::uint32_t>(region))
                .start_failure_detector(SimTime::milliseconds(probe_ms));
          }
          // Crash waves (silent): a rotating CPF fails every 100 ms and
          // restarts 70 ms later; only the heartbeat monitors notice.
          for (int wave = 0; wave < waves; ++wave) {
            const SimTime at = SimTime::milliseconds(150 + 100 * wave);
            const CpfId victim{static_cast<std::uint32_t>(wave % 5)};
            loop.schedule_at(at, [&system, victim] {
              system.crash_cpf_silently(victim);
            });
            loop.schedule_at(at + SimTime::milliseconds(70),
                             [&system, victim] {
                               system.restore_cpf(victim);
                             });
          }
        });
    const auto& pf = result.metrics.pct_under_failure[static_cast<std::size_t>(
        core::ProcedureType::kServiceRequest)];
    std::printf(
        "ablation_detection\tprobe_ms=%lld\tfailure_sr_p50_ms=%.3f\t"
        "n=%zu\treplays=%llu\treattaches=%llu\n",
        static_cast<long long>(probe_ms), pf.empty() ? -1.0 : pf.median(),
        pf.count(),
        static_cast<unsigned long long>(result.metrics.replays),
        static_cast<unsigned long long>(result.metrics.reattaches));
    obs::Json& row = report.new_row("Neutrino");
    row["x"] = probe_ms;
    row["failure_sr_pct_ms"] = obs::summary_json(pf);
    bench::Report::attach_result(row, result);
  }
  return 0;
}
