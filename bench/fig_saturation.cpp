// fig_saturation: offered-load sweep through the saturation knee
// (DESIGN.md §13).
//
// The knee is calibrated from first principles: a low-rate probe measures
// the busy time each completed procedure places on the CTA consumer pool
// and on the CPF request pools; the sustainable system rate is the
// smaller of regions/demand_cta and total_cpfs/demand_cpf. The sweep then
// offers {0.5, 1, 1.5, 2}× that rate with overload control armed (bounded
// CTA/CPF queues, attach admission at 50%, NAS retransmission), plus one
// unbounded-baseline run at 2× for contrast. Memory is reported as a
// per-run watermark *delta* (obs::RssMeter), so the rows are
// order-independent: ru_maxrss is process-lifetime monotone, and a raw
// reading would attribute an earlier row's backlog to whoever runs after.
//
// Acceptance surface (validate_report.py, figure "fig_saturation"): at 2×
// the knee the controlled run must show zero RYW violations, a peak queue
// depth bounded by the configured capacity, completion ≥ 99% after the
// drain, and a non-zero attach shed rate — while the baseline's peak
// backlog exceeds the configured bound (unbounded growth).
#include <cinttypes>
#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "obs/throughput.hpp"

using namespace neutrino;

namespace {

struct PoolLoad {
  double cta_busy_sec = 0;
  double cpf_busy_sec = 0;
  std::size_t peak_cta_depth = 0;
  std::size_t peak_cpf_depth = 0;
};

PoolLoad scan_pools(core::System& system, const core::TopologyConfig& topo) {
  PoolLoad load;
  const auto regions = static_cast<std::uint32_t>(topo.total_regions());
  for (std::uint32_t r = 0; r < regions; ++r) {
    load.cta_busy_sec += system.cta(r).pool_busy_time().sec();
    load.peak_cta_depth =
        std::max(load.peak_cta_depth, system.cta(r).pool_peak_depth());
  }
  const auto cpfs = regions * static_cast<std::uint32_t>(topo.cpfs_per_region);
  for (std::uint32_t c = 0; c < cpfs; ++c) {
    load.cpf_busy_sec += system.cpf(CpfId{c}).request_busy_time().sec();
    load.peak_cpf_depth = std::max(load.peak_cpf_depth,
                                   system.cpf(CpfId{c}).request_peak_depth());
  }
  return load;
}

std::vector<trace::TraceRecord> make_offered(double rate_pps, SimTime window,
                                             std::uint64_t population,
                                             int regions) {
  trace::ProcedureMix mix;
  mix.service_request = 0.5;
  mix.intra_handover = 0.1;  // attach gets the remaining 0.4
  trace::UniformWorkload workload(rate_pps, window, mix, /*seed=*/23);
  return workload.generate(population, regions);
}

std::uint64_t count_attaches(const std::vector<trace::TraceRecord>& t) {
  std::uint64_t n = 0;
  for (const auto& rec : t) {
    if (rec.type == core::ProcedureType::kAttach) ++n;
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "fig_saturation",
                       "offered load through the saturation knee",
                       "bounded queues + NAS retx: zero RYW violations and "
                       ">=99% completion at 2x the knee; unbounded baseline "
                       "backlog grows without bound");
  const core::TopologyConfig topo;  // library default slice
  const auto regions = static_cast<std::uint32_t>(topo.total_regions());
  const std::uint64_t population =
      report.options().ues != 0 ? report.options().ues
                                : (report.smoke() ? 2'000 : 10'000);
  const SimTime window =
      report.smoke() ? SimTime::milliseconds(200) : SimTime::seconds(1);

  // --scenario=NAME sweeps a traffic-engine scenario through the knee
  // instead of the constant-rate uniform mix (the knee is recalibrated
  // from the scenario's own procedure mix). Unset keeps the built-in
  // workload byte-for-byte; unknown names exit 2.
  const traffic::ScenarioInfo* scen =
      bench::require_scenario(report.options().scenario);
  traffic::ScenarioRequest screq;
  screq.duration = window;
  screq.population = population;
  screq.regions = static_cast<int>(regions);
  screq.seed = 23;
  std::optional<traffic::GeneratedTraffic> scen_traffic;
  const auto offered = [&](double rate_pps) {
    if (scen == nullptr) {
      scen_traffic.reset();
      return make_offered(rate_pps, window, population,
                          static_cast<int>(regions));
    }
    screq.target_pps = rate_pps;
    scen_traffic =
        traffic::generate_scenario(report.options().scenario, screq);
    return scen_traffic->records;
  };
  if (scen != nullptr) {
    screq.target_pps = 0;  // echoed per-row; the sweep sets the rate
    bench::echo_scenario_config(report.config(), *scen, screq);
  }

  // --- Knee calibration --------------------------------------------------
  // Probe far below saturation; busy seconds per completed procedure are
  // load-independent (costs are per-message), so the probe rate only needs
  // to be low enough that nothing queues pathologically.
  PoolLoad probe_load;
  double knee_pps = 0;
  {
    bench::ExperimentConfig cfg;
    cfg.policy = core::neutrino_policy();
    cfg.topo = topo;
    cfg.preattached_ues =
        (scen == nullptr || scen->preattach) ? population : 0;
    const auto t = offered(/*rate_pps=*/500);
    const auto result = bench::run_experiment(
        cfg, t, [](core::System&, sim::EventLoop&) {},
        [&](core::System& system) { probe_load = scan_pools(system, topo); });
    const auto completed =
        static_cast<double>(result.metrics.procedures_completed);
    const double d_cta = probe_load.cta_busy_sec / completed;
    const double d_cpf = probe_load.cpf_busy_sec / completed;
    const double knee_cta = static_cast<double>(regions) / d_cta;
    const double knee_cpf =
        static_cast<double>(regions * topo.cpfs_per_region) / d_cpf;
    knee_pps = std::min(knee_cta, knee_cpf);
    report.config()["probe_completed"] =
        result.metrics.procedures_completed.value();
    report.config()["cta_busy_us_per_proc"] = d_cta * 1e6;
    report.config()["cpf_busy_us_per_proc"] = d_cpf * 1e6;
    report.config()["knee_pps"] = knee_pps;
    std::printf("# knee: %.0f pps (cta %.2fus/proc, cpf %.2fus/proc)\n",
                knee_pps, d_cta * 1e6, d_cpf * 1e6);
  }

  constexpr std::size_t kQueueCapacity = 32;
  obs::RssMeter rss_meter;
  report.config()["queue_capacity"] = kQueueCapacity;
  report.config()["population"] = population;
  report.config()["window_ms"] = window.sec() * 1e3;
  report.config()["rss_baseline_bytes"] = rss_meter.baseline_bytes();

  core::ProtocolConfig controlled;
  controlled.cta_queue_capacity = kQueueCapacity;
  controlled.cpf_queue_capacity = kQueueCapacity;
  controlled.attach_admission_fraction = 0.5;
  controlled.nas_retx_timeout = SimTime::milliseconds(20);
  controlled.nas_retx_budget = 6;

  const auto run_point = [&](const char* system_name,
                             const core::ProtocolConfig& proto, double mult,
                             bool trace_this_run = false) {
    bench::ExperimentConfig cfg;
    cfg.policy = core::neutrino_policy();
    cfg.topo = topo;
    cfg.proto = proto;
    cfg.preattached_ues =
        (scen == nullptr || scen->preattach) ? population : 0;
    cfg.streaming_pct = true;  // storm-scale run; percentiles not needed
    cfg.telemetry_window = report.options().telemetry_window();
    cfg.record_trace_events = trace_this_run;
    const double rate = knee_pps * mult;
    const auto t = offered(rate);
    PoolLoad load;
    rss_meter.begin_run();
    const auto result = bench::run_experiment(
        cfg, t, [](core::System&, sim::EventLoop&) {},
        [&](core::System& system) { load = scan_pools(system, topo); });
    const std::size_t rss_delta = rss_meter.run_delta_bytes();
    if (trace_this_run) {
      bench::write_trace_file(report.options().trace_out,
                              obs::perfetto_trace(result.tracer.get()));
    }
    const auto& m = result.metrics;
    const std::uint64_t offered_attaches = count_attaches(t);
    const double completion =
        m.procedures_started == 0u
            ? 1.0
            : static_cast<double>(m.procedures_completed.value()) /
                  static_cast<double>(m.procedures_started.value());
    // Sheds per offered attach; retransmitted attaches can be shed again,
    // so under sustained 2x overload this intentionally exceeds 1.
    const double shed_rate =
        offered_attaches == 0u
            ? 0.0
            : static_cast<double>(m.attach_sheds.value()) /
                  static_cast<double>(offered_attaches);
    const std::size_t rss = obs::peak_rss_bytes();
    std::printf("fig_saturation\t%s\t%.2f\toffered=%.0fpps\tn=%zu\t"
                "completion=%.4f\tsheds=%" PRIu64 "\tdrops=%" PRIu64
                "\tretx=%" PRIu64 "\texhausted=%" PRIu64
                "\tpeak_cta=%zu\tpeak_cpf=%zu\trss_mb=%.1f\t"
                "rss_delta_mb=%.1f\n",
                system_name, mult, rate, t.size(), completion,
                m.attach_sheds.value(), m.overload_drops.value(),
                m.nas_retransmissions.value(), m.retx_exhausted.value(),
                load.peak_cta_depth, load.peak_cpf_depth,
                static_cast<double>(rss) / (1024.0 * 1024.0),
                static_cast<double>(rss_delta) / (1024.0 * 1024.0));
    obs::Json& row = report.new_row(system_name);
    row["x"] = mult;
    row["offered_pps"] = rate;
    row["offered_procedures"] = static_cast<std::uint64_t>(t.size());
    row["offered_attaches"] = offered_attaches;
    row["completion_rate"] = completion;
    row["attach_shed_rate"] = shed_rate;
    row["peak_cta_depth"] = static_cast<std::uint64_t>(load.peak_cta_depth);
    row["peak_cpf_depth"] = static_cast<std::uint64_t>(load.peak_cpf_depth);
    row["peak_rss_bytes"] = rss;
    row["peak_rss_delta_bytes"] = static_cast<std::uint64_t>(rss_delta);
    if (scen != nullptr) {
      row["scenario"] = report.options().scenario;
      bench::attach_arrivals(row, *scen_traffic, window);
    }
    bench::Report::attach_result(row, result);
  };

  const bool want_trace = !report.options().trace_out.empty();
  for (const double mult : {0.5, 1.0, 1.5, 2.0}) {
    // The 2x controlled point is the interesting timeline (sheds + retx
    // under full overload control): that's the one --trace-out exports.
    run_point("overload-control", controlled, mult,
              want_trace && mult == 2.0);
  }
  // Pre-PR baseline: no bounds, no retx — the backlog at 2x grows with the
  // window and the peak depth lands far beyond the controlled bound.
  // (Order no longer matters for the RSS columns: each row reports its own
  // watermark delta.)
  run_point("baseline-unbounded", core::ProtocolConfig{}, 2.0);
  return 0;
}
