// fig_mobility: FastHandover PCT tails under city-scale mobility
// (DESIGN.md §18).
//
// The paper's handover evaluation (§6.3, Fig. 11) measures FastHandover
// against a stationary mix; this bench drives the *movement* that
// actually produces inter-region handovers. A 16-region (4x4 geohash
// grid) metro runs the commuter-crossing scenario — >= 100k moving UEs
// whose commute wave collides with CPF crash windows timed inside the
// wave — on the sharded runtime across worker-thread counts {1,2,4,8}:
//
//  * FastHandover PCT tails (p50/p95/p99) with the fast/slow path split
//    (core.fast_handovers vs core.state_fetches: crossings into a
//    crashed-and-restored CPF must park in pending_handover_ and fetch);
//  * the measured boundary-crossing rate against the arXiv 1607.06439
//    closed form (4/pi)v/L times the analytic finite-block correction,
//    within the documented 10% tolerance;
//  * ping-pong accounting from the edge-pingpong scenario (hysteresis
//    suppression vs emitted A->B->A pairs);
//  * zero RYW violations with mobility and chaos active, and bit-identical
//    counters/PCT across every worker-thread count (the ISSUE acceptance
//    gate — the bench exits non-zero on any miss).
//
//   --ues=N          moving population (default 100k; --smoke 5k)
//   --threads=a,b,c  worker-thread sweep (default 1,2,4,8)
//   --shards=N       shard count AND mobility confinement blocks (default 2)
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "obs/throughput.hpp"

using namespace neutrino;

namespace {

/// Crash/restore windows colliding with the commute wave: the primary
/// CPFs (for UE 0) of two regions per shard half go down as departures
/// peak and come back empty mid-wave, so post-restore crossings into
/// them deterministically take the slow StateFetch path.
struct ChaosPlan {
  std::vector<std::pair<std::uint32_t, CpfId>> doomed;  // (region, cpf)
  SimTime crash_at;
  SimTime restore_at;
};

ChaosPlan plan_chaos(core::ShardedSystem& sys, std::uint32_t regions,
                     SimTime duration) {
  ChaosPlan plan;
  plan.crash_at = SimTime::nanoseconds(duration.ns() / 5);          // 0.20
  plan.restore_at = SimTime::nanoseconds(duration.ns() * 7 / 20);   // 0.35
  for (const std::uint32_t region :
       {0u, 1u, regions / 2, regions / 2 + 1}) {
    core::System& owner = sys.system(sys.shard_of_region(region));
    plan.doomed.emplace_back(region,
                             owner.primary_cpf_for(UeId{0}, region));
  }
  return plan;
}

struct RunOut {
  bench::ExperimentResult result;
  LatencyRecorder handover_pct;
};

/// One sharded replay of a generated scenario with the chaos plan armed.
RunOut run_replay(const core::TopologyConfig& topo,
                  const std::vector<trace::TraceRecord>& records,
                  std::uint64_t population, std::uint32_t shards,
                  std::uint32_t threads, SimTime duration, bool with_chaos,
                  SimTime telemetry_window) {
  core::ShardedSystem::Config cfg;
  cfg.policy = core::neutrino_policy();
  cfg.topo = topo;
  cfg.shards = shards;
  cfg.threads = threads;
  core::ShardedSystem sys(cfg, bench::measured_costs());
  const auto regions = static_cast<std::uint32_t>(topo.total_regions());
  for (std::uint64_t ue = 0; ue < population; ++ue) {
    sys.preattach(UeId(ue), static_cast<std::uint32_t>(ue % regions));
  }
  sys.replay(records);
  if (with_chaos) {
    const ChaosPlan plan = plan_chaos(sys, regions, duration);
    for (const auto& [region, cpf] : plan.doomed) {
      (void)region;
      sys.schedule_crash(plan.crash_at, cpf);
      sys.schedule_restore(plan.restore_at, cpf);
    }
  }
  SimTime horizon = SimTime::seconds(10);
  if (!records.empty()) horizon += records.back().at;
  if (telemetry_window.ns() > 0) {
    sys.arm_telemetry(telemetry_window, horizon);
    sys.arm_slo(telemetry_window, bench::default_slo_targets());
  }
  obs::WallTimer wall;
  sys.run_until(horizon);
  const double wall_seconds = wall.seconds();
  RunOut out{bench::ExperimentResult{sys.merged_metrics(), horizon.sec(),
                                     sys.events_executed(), wall_seconds,
                                     shards, threads},
             LatencyRecorder{}};
  out.result.windows = sys.stats().windows;
  out.result.cross_shard_messages = sys.stats().cross_messages;
  out.result.adaptive_extensions = sys.stats().adaptive_extensions;
  out.result.dispatches_skipped = sys.stats().dispatches_skipped;
  out.result.shard_events = sys.shard_events();
  out.handover_pct.merge(
      out.result.metrics.pct_for(core::ProcedureType::kHandover));
  return out;
}

obs::Json mobility_json(const traffic::MobilityStats& stats,
                        double tolerance) {
  obs::Json m;
  m["moving_ues"] = stats.moving_ues;
  m["crossings"] = stats.crossings;
  m["pingpong_pairs"] = stats.pingpong_pairs;
  m["suppressed_excursions"] = stats.suppressed_excursions;
  m["cell_pitch_m"] = stats.cell_pitch_m;
  m["hysteresis_m"] = stats.hysteresis_m;
  m["pingpong_window_s"] = stats.pingpong_window_s;
  m["block_correction"] = stats.block_correction;
  m["expected_leg_m"] = stats.expected_leg_m;
  m["rate_tolerance"] = tolerance;
  m["worst_rate_deviation"] = stats.worst_rate_deviation();
  bool any_validated = false;
  obs::Json& classes = m["classes"];
  classes.make_array();
  for (const traffic::MobilityClassStats& c : stats.classes) {
    obs::Json& row = classes.push_back(obs::Json{});
    row["name"] = c.name;
    row["ues"] = c.ues;
    row["crossings"] = c.crossings;
    row["mean_leg_m"] = c.mean_leg_m();
    row["measured_rate_hz"] = c.measured_rate_hz();
    row["predicted_rate_hz"] = c.predicted_rate_hz;
    row["validate"] = c.validate_rate;
    any_validated = any_validated || c.validate_rate;
  }
  m["rate_validated"] = any_validated;
  return m;
}

/// Everything a deterministic run computes, flattened for cross-thread
/// comparison (wall clock and rates excluded by construction).
std::map<std::string, std::uint64_t> fingerprint(const RunOut& run) {
  std::map<std::string, std::uint64_t> fp;
  fp["events"] = run.result.events_executed;
  fp["windows"] = run.result.windows;
  fp["cross_messages"] = run.result.cross_shard_messages;
  run.result.metrics.registry.for_each_counter(
      [&](const std::string& key, const obs::Counter& c) {
        fp["counter." + key] = c.value();
      });
  const auto s = run.handover_pct.summary();
  fp["ho.n"] = s.count;
  // Bit patterns, not values: the determinism claim is exact.
  auto bits = [](double v) {
    std::uint64_t u = 0;
    static_assert(sizeof(u) == sizeof(v));
    std::memcpy(&u, &v, sizeof(u));
    return u;
  };
  fp["ho.mean"] = bits(s.mean);
  fp["ho.p50"] = bits(s.p50);
  fp["ho.p99"] = bits(s.p99);
  fp["ho.max"] = bits(s.max);
  return fp;
}

void fill_row(obs::Json& row, const char* scenario, std::uint32_t threads,
              const RunOut& run, const traffic::GeneratedTraffic& gen,
              SimTime duration) {
  row["x"] = threads;
  row["scenario"] = scenario;
  bench::attach_arrivals(row, gen, duration);
  obs::Json pct = obs::summary_json(run.handover_pct);
  // "n" alongside summary_json's "count": opts the summary into the
  // validator's monotone-percentile check (and the summarizer reads it).
  pct["n"] = run.handover_pct.count();
  if (!run.handover_pct.empty()) {
    pct["p95"] = run.handover_pct.percentile(0.95);
  } else {
    pct["p95"] = 0.0;
  }
  row["handover_pct_ms"] = std::move(pct);
  row["events_per_sec"] =
      run.result.wall_seconds > 0
          ? static_cast<double>(run.result.events_executed) /
                run.result.wall_seconds
          : 0.0;
  row["wall_seconds"] = run.result.wall_seconds;
  row["events_executed"] = run.result.events_executed;
  bench::Report::attach_result(row, run.result);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report(
      argc, argv, "fig_mobility",
      "FastHandover PCT tails under city-scale mobility + crash collisions",
      "proactive replication keeps handover PCT low (§4.3); crossings into "
      "crashed-and-restored CPFs take the consistent slow path with zero "
      "RYW violations");
  const bench::BenchOptions& opts = report.options();

  core::TopologyConfig topo;
  topo.l2_regions = 4;
  topo.l1_per_l2 = 4;  // 4x4 geohash grid, 4 regions per level-2 quad
  const auto regions = static_cast<std::uint32_t>(topo.total_regions());
  const std::uint32_t shards = opts.shards != 0 ? opts.shards : 2;
  std::vector<std::uint32_t> threads = opts.threads;
  if (threads.empty()) threads = {1, 2, 4, 8};

  const std::uint64_t population =
      opts.ues != 0 ? opts.ues : (report.smoke() ? 5'000 : 100'000);
  const SimTime duration =
      report.smoke() ? SimTime::seconds(30) : SimTime::seconds(120);
  constexpr double kRateTolerance = 0.10;  // DESIGN.md §18

  traffic::ScenarioRequest req;
  req.target_pps = report.smoke() ? 300.0 : 2'000.0;
  req.duration = duration;
  req.population = population;
  req.regions = static_cast<int>(regions);
  req.seed = 29;
  req.shard_blocks = shards;  // confinement == the runtime's partition

  traffic::MobilityStats stats;
  const auto gen =
      traffic::generate_scenario("commuter-crossing", req, &stats);
  bench::echo_scenario_config(report.config(),
                              *traffic::find_scenario("commuter-crossing"),
                              req);
  report.config()["shards"] = shards;
  report.config()["mobility"] = mobility_json(stats, kRateTolerance);

  bool ok = true;

  // --- Rate-vs-density validation (generation-side; replay-independent).
  const double worst_dev = stats.worst_rate_deviation();
  bool any_validated = false;
  for (const auto& c : stats.classes) any_validated |= c.validate_rate;
  std::printf("# mobility: %" PRIu64 " moving UEs, %" PRIu64
              " crossings, kappa=%.4f, worst rate deviation %.4f "
              "(tolerance %.2f)\n",
              stats.moving_ues, stats.crossings, stats.block_correction,
              worst_dev, kRateTolerance);
  for (const auto& c : stats.classes) {
    std::printf("#   %-16s ues=%-8" PRIu64 " crossings=%-8" PRIu64
                " measured=%.6fHz predicted=%.6fHz%s\n",
                c.name.c_str(), c.ues, c.crossings, c.measured_rate_hz(),
                c.predicted_rate_hz * stats.block_correction,
                c.validate_rate ? "  [validated]" : "");
  }
  if (worst_dev > kRateTolerance) {
    std::fprintf(stderr,
                 "fig_mobility: FAILED rate check: deviation %.4f > %.2f\n",
                 worst_dev, kRateTolerance);
    ok = false;
  }
  if (!report.smoke() && !any_validated) {
    std::fprintf(stderr,
                 "fig_mobility: FAILED: no class entered the rate check's "
                 "regime at full scale\n");
    ok = false;
  }

  // --- The thread sweep: commute wave + chaos collisions, bit-identical
  // outcomes regardless of worker count.
  std::map<std::string, std::uint64_t> reference;
  std::uint32_t reference_threads = 0;
  for (const std::uint32_t t : threads) {
    RunOut run = run_replay(topo, gen->records, population, shards, t,
                            duration, /*with_chaos=*/true,
                            opts.telemetry_window());
    const auto& m = run.result.metrics;
    const LatencyRecorder& pct = run.handover_pct;
    std::printf(
        "fig_mobility\tcommuter-crossing\t%u\tn=%zu\tp50=%.3f\tp95=%.3f\t"
        "p99=%.3f\tfast=%" PRIu64 "\tfetch=%" PRIu64 "\treattach=%" PRIu64
        "\tryw=%" PRIu64 "\n",
        t, pct.count(), pct.empty() ? 0.0 : pct.percentile(0.50),
        pct.empty() ? 0.0 : pct.percentile(0.95),
        pct.empty() ? 0.0 : pct.percentile(0.99), m.fast_handovers.value(),
        m.state_fetches.value(), m.reattaches.value(),
        m.ryw_violations.value());
    obs::Json& row = report.new_row("commuter-crossing");
    fill_row(row, "commuter-crossing", t, run, *gen, duration);

    if (m.ryw_violations.value() != 0) {
      std::fprintf(stderr,
                   "fig_mobility: FAILED: %" PRIu64
                   " RYW violations at threads=%u\n",
                   m.ryw_violations.value(), t);
      ok = false;
    }
    if (m.fast_handovers.value() + m.state_fetches.value() == 0) {
      std::fprintf(stderr,
                   "fig_mobility: FAILED: no inter-region handovers "
                   "completed at threads=%u\n",
                   t);
      ok = false;
    }
    if (m.state_fetches.value() == 0) {
      std::fprintf(stderr,
                   "fig_mobility: FAILED: chaos collision never forced the "
                   "slow StateFetch path at threads=%u\n",
                   t);
      ok = false;
    }
    const auto fp = fingerprint(run);
    if (reference.empty()) {
      reference = fp;
      reference_threads = t;
    } else if (fp != reference) {
      for (const auto& [key, value] : fp) {
        const auto it = reference.find(key);
        if (it == reference.end() || it->second != value) {
          std::fprintf(stderr,
                       "fig_mobility: FAILED: %s differs at threads=%u vs "
                       "threads=%u\n",
                       key.c_str(), t, reference_threads);
        }
      }
      ok = false;
    }
  }

  // --- Ping-pong edges: the oscillator scenario at reduced scale, one
  // deterministic replay (thread invariance is already pinned above and
  // in tests/mobility_test.cpp).
  {
    traffic::ScenarioRequest preq = req;
    preq.population = std::max<std::uint64_t>(
        1'000, std::min<std::uint64_t>(population / 10, 10'000));
    preq.duration = report.smoke() ? SimTime::seconds(20)
                                   : SimTime::seconds(30);
    preq.target_pps = report.smoke() ? 100.0 : 500.0;
    traffic::MobilityStats pstats;
    const auto pgen =
        traffic::generate_scenario("edge-pingpong", preq, &pstats);
    RunOut run = run_replay(topo, pgen->records, preq.population, shards,
                            threads.front(), preq.duration,
                            /*with_chaos=*/false, opts.telemetry_window());
    const auto& m = run.result.metrics;
    const LatencyRecorder& pct = run.handover_pct;
    std::printf("fig_mobility\tedge-pingpong\t%u\tn=%zu\tp50=%.3f\t"
                "p99=%.3f\tpingpongs=%" PRIu64 "\tsuppressed=%" PRIu64
                "\tryw=%" PRIu64 "\n",
                threads.front(), pct.count(),
                pct.empty() ? 0.0 : pct.percentile(0.50),
                pct.empty() ? 0.0 : pct.percentile(0.99),
                pstats.pingpong_pairs, pstats.suppressed_excursions,
                m.ryw_violations.value());
    obs::Json& row = report.new_row("edge-pingpong");
    fill_row(row, "edge-pingpong", threads.front(), run, *pgen,
             preq.duration);
    row["pingpong_pairs"] = pstats.pingpong_pairs;
    row["suppressed_excursions"] = pstats.suppressed_excursions;
    if (pstats.pingpong_pairs == 0 || pstats.suppressed_excursions == 0) {
      std::fprintf(stderr,
                   "fig_mobility: FAILED: edge-pingpong produced no "
                   "ping-pong pairs or no suppressed excursions\n");
      ok = false;
    }
    if (m.ryw_violations.value() != 0) {
      std::fprintf(stderr, "fig_mobility: FAILED: %" PRIu64
                           " RYW violations under edge-pingpong\n",
                   m.ryw_violations.value());
      ok = false;
    }
  }

  report.finish();
  if (!ok) std::fprintf(stderr, "fig_mobility: acceptance gate FAILED\n");
  return ok ? 0 : 1;
}
