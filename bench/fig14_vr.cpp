// Fig. 14: deadline misses for a VR application under mobility.
//
// Paper (§6.6): head-tracked VR needs <16 ms for perceptual stability [53];
// single- and multiple-handover scenarios with 10K..500K active users.
// Neutrino misses up to 2.5x fewer deadlines.
#include "mobility_app_scenario.hpp"

using namespace neutrino;

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "fig14", "VR deadline misses (16 ms budget)",
                       "Neutrino up to 2.5x fewer misses");
  const std::vector<std::uint64_t> counts =
      report.smoke()
          ? std::vector<std::uint64_t>{10'000}
          : std::vector<std::uint64_t>{10'000,  20'000,  50'000,
                                       100'000, 200'000, 500'000};
  bench::run_mobility_app_scenario(report, "fig14", "single-HO",
                                   apps::DeadlineApp::kVrDeadline(), counts,
                                   /*handovers=*/1);
  bench::run_mobility_app_scenario(report, "fig14", "multi-HO",
                                   apps::DeadlineApp::kVrDeadline(), counts,
                                   /*handovers=*/8);
  return 0;
}
