// fig_scenarios: the saturation sweep re-run under realistic traffic
// (DESIGN.md §17).
//
// fig_saturation calibrates one knee for the constant-rate uniform mix;
// this bench runs the same calibration + sweep once per *named scenario*
// (src/traffic/scenario.hpp): probe the scenario at a low rate to price
// its procedure mix on the CTA/CPF pools, derive the scenario-specific
// knee, then offer {0.5, 1, 1.5}x that knee with overload control armed.
// Spiky scenarios (stadium-egress, region-blackout-reconnect) push far
// past the knee *instantaneously* even at 1x average — exactly the
// regime bounded queues + NAS retransmission exist for.
//
// Acceptance surface (validate_report.py, figure "fig_scenarios"): every
// row echoes its scenario and carries offered-arrival accounting (total +
// per-class counts + a windowed arrival series); at 1x the calibrated
// knee every scenario completes >= 99% of started procedures with zero
// RYW violations. The bench itself exits non-zero when that gate fails.
//
//   --scenario=NAME   sweep only NAME (default: every named scenario)
//   --ues=N           population override (default 10k; --smoke 2k)
#include <cinttypes>
#include <cstdio>

#include "bench_util.hpp"

using namespace neutrino;

namespace {

struct PoolLoad {
  double cta_busy_sec = 0;
  double cpf_busy_sec = 0;
  std::size_t peak_cta_depth = 0;
  std::size_t peak_cpf_depth = 0;
};

PoolLoad scan_pools(core::System& system, const core::TopologyConfig& topo) {
  PoolLoad load;
  const auto regions = static_cast<std::uint32_t>(topo.total_regions());
  for (std::uint32_t r = 0; r < regions; ++r) {
    load.cta_busy_sec += system.cta(r).pool_busy_time().sec();
    load.peak_cta_depth =
        std::max(load.peak_cta_depth, system.cta(r).pool_peak_depth());
  }
  const auto cpfs = regions * static_cast<std::uint32_t>(topo.cpfs_per_region);
  for (std::uint32_t c = 0; c < cpfs; ++c) {
    load.cpf_busy_sec += system.cpf(CpfId{c}).request_busy_time().sec();
    load.peak_cpf_depth = std::max(load.peak_cpf_depth,
                                   system.cpf(CpfId{c}).request_peak_depth());
  }
  return load;
}

/// All procedure types folded into one PCT distribution: the scenarios
/// differ in mix, so a per-type table would not compare across them.
LatencyRecorder merged_pct(core::Metrics& m) {
  LatencyRecorder merged;
  using PT = core::ProcedureType;
  for (const PT type : {PT::kAttach, PT::kServiceRequest, PT::kHandover,
                        PT::kIntraHandover, PT::kReattach, PT::kDetach,
                        PT::kTau}) {
    merged.merge(m.pct_for(type));
  }
  return merged;
}

obs::Json pct_json(const LatencyRecorder& pct) {
  obs::Json j;
  j["n"] = pct.count();
  j["mean"] = pct.mean();
  if (pct.empty()) {
    j["p50"] = 0.0;
    j["p95"] = 0.0;
    j["p99"] = 0.0;
    j["max"] = 0.0;
  } else {
    j["p50"] = pct.percentile(0.50);
    j["p95"] = pct.percentile(0.95);
    j["p99"] = pct.percentile(0.99);
    j["max"] = pct.max();
  }
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "fig_scenarios",
                       "per-scenario saturation sweep (traffic engine)",
                       "every named scenario at its calibrated knee: zero "
                       "RYW violations and >=99% completion with overload "
                       "control armed");
  const bench::BenchOptions& opts = report.options();
  const core::TopologyConfig topo;  // library default slice
  const auto regions = static_cast<std::uint32_t>(topo.total_regions());
  const std::uint64_t population =
      opts.ues != 0 ? opts.ues : (report.smoke() ? 2'000 : 10'000);
  const SimTime window =
      report.smoke() ? SimTime::milliseconds(300) : SimTime::seconds(1);

  std::vector<std::string> names;
  if (!opts.scenario.empty()) {
    bench::require_scenario(opts.scenario);  // exits 2 on a typo
    names.push_back(opts.scenario);
  } else {
    for (const traffic::ScenarioInfo& s : traffic::scenarios()) {
      names.emplace_back(s.name);
    }
  }

  constexpr std::size_t kQueueCapacity = 32;
  core::ProtocolConfig controlled;
  controlled.cta_queue_capacity = kQueueCapacity;
  controlled.cpf_queue_capacity = kQueueCapacity;
  controlled.attach_admission_fraction = 0.5;
  controlled.nas_retx_timeout = SimTime::milliseconds(20);
  controlled.nas_retx_budget = 6;

  report.config()["queue_capacity"] = kQueueCapacity;
  report.config()["population"] = population;
  report.config()["window_ms"] = window.sec() * 1e3;
  obs::Json& scenario_list = report.config()["scenarios"];
  scenario_list.make_array();
  for (const std::string& n : names) scenario_list.push_back(n);
  obs::Json& knees = report.config()["knees"];
  knees.make_object();

  bool ok = true;
  for (const std::string& name : names) {
    const traffic::ScenarioInfo* info = traffic::find_scenario(name);
    traffic::ScenarioRequest req;
    req.duration = window;
    req.population = population;
    req.regions = static_cast<int>(regions);
    req.seed = 23;

    // --- Per-scenario knee calibration (fig_saturation's method): probe
    // the *scenario's own mix* far below saturation; busy seconds per
    // completed procedure are load-independent.
    double knee_pps = 0;
    {
      req.target_pps = 500;
      const auto probe = traffic::generate_scenario(name, req);
      bench::ExperimentConfig cfg;
      cfg.policy = core::neutrino_policy();
      cfg.topo = topo;
      cfg.preattached_ues = info->preattach ? population : 0;
      PoolLoad load;
      const auto result = bench::run_experiment(
          cfg, probe->records, [](core::System&, sim::EventLoop&) {},
          [&](core::System& system) { load = scan_pools(system, topo); });
      const auto completed =
          static_cast<double>(result.metrics.procedures_completed);
      if (completed <= 0) {
        std::fprintf(stderr, "fig_scenarios: %s probe completed nothing\n",
                     name.c_str());
        ok = false;
        continue;
      }
      const double d_cta = load.cta_busy_sec / completed;
      const double d_cpf = load.cpf_busy_sec / completed;
      knee_pps = std::min(
          static_cast<double>(regions) / d_cta,
          static_cast<double>(regions * topo.cpfs_per_region) / d_cpf);
      knees[name] = knee_pps;
      std::printf("# %s knee: %.0f pps (cta %.2fus/proc, cpf %.2fus/proc)\n",
                  name.c_str(), knee_pps, d_cta * 1e6, d_cpf * 1e6);
    }

    for (const double mult : {0.5, 1.0, 1.5}) {
      req.target_pps = knee_pps * mult;
      const auto traffic_gen = traffic::generate_scenario(name, req);
      bench::ExperimentConfig cfg;
      cfg.policy = core::neutrino_policy();
      cfg.topo = topo;
      cfg.proto = controlled;
      cfg.preattached_ues = info->preattach ? population : 0;
      cfg.telemetry_window = opts.telemetry_window();
      PoolLoad load;
      auto result = bench::run_experiment(
          cfg, traffic_gen->records, [](core::System&, sim::EventLoop&) {},
          [&](core::System& system) { load = scan_pools(system, topo); });
      auto& m = result.metrics;
      const double completion =
          m.procedures_started == 0u
              ? 1.0
              : static_cast<double>(m.procedures_completed.value()) /
                    static_cast<double>(m.procedures_started.value());
      const LatencyRecorder pct = merged_pct(m);
      std::printf(
          "fig_scenarios\t%s\t%.2f\toffered=%.0fpps\tn=%" PRIu64
          "\tcompletion=%.4f\tsheds=%" PRIu64 "\tretx=%" PRIu64
          "\texhausted=%" PRIu64 "\tp50=%.3f\tp95=%.3f\tp99=%.3f\t"
          "peak_cta=%zu\tpeak_cpf=%zu\tryw=%" PRIu64 "\n",
          name.c_str(), mult, req.target_pps, traffic_gen->total(),
          completion, m.attach_sheds.value(),
          m.nas_retransmissions.value(), m.retx_exhausted.value(),
          pct.empty() ? 0.0 : pct.percentile(0.50),
          pct.empty() ? 0.0 : pct.percentile(0.95),
          pct.empty() ? 0.0 : pct.percentile(0.99), load.peak_cta_depth,
          load.peak_cpf_depth, m.ryw_violations.value());
      obs::Json& row = report.new_row(name);
      row["x"] = mult;
      row["scenario"] = name;
      row["offered_pps"] = req.target_pps;
      row["knee_pps"] = knee_pps;
      row["completion_rate"] = completion;
      row["pct_ms"] = pct_json(pct);
      row["peak_cta_depth"] = static_cast<std::uint64_t>(load.peak_cta_depth);
      row["peak_cpf_depth"] = static_cast<std::uint64_t>(load.peak_cpf_depth);
      bench::attach_arrivals(row, *traffic_gen, window);
      bench::Report::attach_result(row, result);

      // The acceptance gate rides the 1x-knee row: realistic mixes must
      // clear the calibrated knee with overload control, zero RYW and
      // >= 99% completion (ISSUE 8 acceptance).
      if (mult == 1.0 &&
          (m.ryw_violations.value() != 0 || completion < 0.99)) {
        std::fprintf(stderr,
                     "fig_scenarios: FAILED %s at knee: completion=%.4f "
                     "ryw=%" PRIu64 "\n",
                     name.c_str(), completion, m.ryw_violations.value());
        ok = false;
      }
    }
  }
  report.finish();
  return ok ? 0 : 1;
}
