// Fig. 17: maximum CTA log size vs number of active users.
//
// Paper (§6.7.3): with per-procedure synchronization the log grows with
// active users but stays under 400 MB even at 200K users; handover
// procedures log more than attaches (more/larger messages in flight).
#include "bench_util.hpp"
#include "obs/sampler.hpp"

using namespace neutrino;

namespace {

struct LogSizeRun {
  std::size_t peak_bytes = 0;
  bench::ExperimentResult result;
};

LogSizeRun peak_log_bytes(const core::CorePolicy& policy,
                          core::ProcedureType type, std::uint64_t users) {
  bench::ExperimentConfig cfg;
  cfg.policy = policy;
  cfg.topo.l1_per_l2 = type == core::ProcedureType::kHandover ? 4 : 1;
  cfg.preattached_ues = type == core::ProcedureType::kHandover ? users : 0;

  std::vector<trace::TraceRecord> t;
  t.reserve(users);
  Rng rng(42);
  for (std::uint64_t ue = 0; ue < users; ++ue) {
    trace::TraceRecord rec;
    // All users act within one second (the paper's highest-pressure case).
    rec.at = SimTime::nanoseconds(
        static_cast<std::int64_t>(rng.next_double() * 1e9));
    rec.ue = UeId(ue);
    rec.type = type;
    rec.target_region =
        type == core::ProcedureType::kHandover
            ? static_cast<std::uint32_t>((ue + 1) %
                                         static_cast<std::uint64_t>(
                                             cfg.topo.total_regions()))
            : 0;
    t.push_back(rec);
  }
  trace::sort_records(t);

  std::size_t peak = 0;
  auto result = bench::run_experiment(
      cfg, t,
      [&](core::System& system, sim::EventLoop& loop) {
        // Sample log footprint + pool occupancy every 5 ms; the registry
        // keeps the cta.log_bytes series the report exports.
        obs::PeriodicSampler::schedule(
            loop, SimTime::milliseconds(5), SimTime::seconds(20),
            [&system] {
              system.sample_log_sizes();
              system.sample_occupancy();
            });
      },
      [&](core::System& system) {
        system.sample_log_sizes();
        peak = system.metrics().cta_log_peak_bytes;
      });
  return {peak, std::move(result)};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "fig17", "maximum CTA log size",
                       "<400 MB at 200K active users; grows with users");
  const std::vector<std::uint64_t> user_counts =
      report.smoke()
          ? std::vector<std::uint64_t>{10'000}
          : std::vector<std::uint64_t>{10'000, 50'000, 100'000, 200'000};
  report.config()["user_counts"].make_array();
  for (const auto u : user_counts) report.config()["user_counts"].push_back(u);
  report.config()["sample_interval_ms"] = 5;
  for (const auto type :
       {core::ProcedureType::kAttach, core::ProcedureType::kHandover}) {
    for (const std::uint64_t users : user_counts) {
      const auto run = peak_log_bytes(core::neutrino_policy(), type, users);
      const double peak_mb = static_cast<double>(run.peak_bytes) / 1e6;
      std::printf("fig17\t%s\t%llu\tpeak_log_mb=%.2f\n",
                  std::string(to_string(type)).c_str(),
                  static_cast<unsigned long long>(users), peak_mb);
      obs::Json& row = report.new_row(to_string(type));
      row["x"] = users;
      row["peak_log_mb"] = peak_mb;
      bench::Report::attach_result(row, run.result);
    }
  }
  return 0;
}
