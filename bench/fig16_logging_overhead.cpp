// Fig. 16: impact of CTA message logging on attach PCT.
//
// Paper (§6.7.2): in-memory logging is fast — its impact on PCT is
// negligible.
#include "bench_util.hpp"

using namespace neutrino;

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "fig16",
                       "attach PCT with and without CTA logging",
                       "logging has negligible PCT impact");
  auto logging_on = core::neutrino_policy();
  logging_on.name = "Logging";
  auto logging_off = core::neutrino_policy();
  logging_off.name = "NoLogging";
  logging_off.cta_message_logging = false;

  const std::vector<double> rates =
      report.smoke()
          ? std::vector<double>{40e3}
          : std::vector<double>{20e3, 40e3, 60e3, 80e3, 100e3, 120e3, 140e3};
  const SimTime duration =
      SimTime::milliseconds(report.smoke() ? 100 : 1000);
  report.config()["rates_pps"].make_array();
  for (const double r : rates) report.config()["rates_pps"].push_back(r);
  report.config()["duration_ms"] = duration.ms();
  for (const auto& policy : {logging_on, logging_off}) {
    for (const double rate : rates) {
      bench::ExperimentConfig cfg;
      cfg.policy = policy;
      cfg.trace_decomposition = report.decompose();
      trace::UniformWorkload workload(rate, duration, {}, /*seed=*/42);
      const auto t = workload.generate(static_cast<std::uint64_t>(rate * 2),
                                       cfg.topo.total_regions());
      const auto result = bench::run_experiment(cfg, t);
      report.add_pct_row(policy.name, rate,
                         result.metrics.pct[static_cast<std::size_t>(
                             core::ProcedureType::kAttach)],
                         &result);
    }
  }
  return 0;
}
