// google-benchmark microbenchmarks over the wire codecs: per-format
// encode and decode timings on a representative real message. Complements
// fig18/fig19 (which report the paper's derived speedup series) with
// statistically-managed raw numbers.
#include <benchmark/benchmark.h>

#include "s1ap/samples.hpp"
#include "serialize/codec.hpp"

namespace neutrino {
namespace {

const s1ap::InitialContextSetupRequest& sample() {
  static const auto msg = s1ap::samples::initial_context_setup();
  return msg;
}

void BM_Encode(benchmark::State& state) {
  const auto format = static_cast<ser::WireFormat>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ser::encode(format, sample()));
  }
  state.SetLabel(std::string(ser::to_string(format)));
}

void BM_Decode(benchmark::State& state) {
  const auto format = static_cast<ser::WireFormat>(state.range(0));
  const Bytes encoded = ser::encode(format, sample());
  for (auto _ : state) {
    if (format == ser::WireFormat::kFlatBuffers ||
        format == ser::WireFormat::kOptimizedFlatBuffers) {
      auto checksum =
          ser::FlatBufAccessor::access_all<s1ap::InitialContextSetupRequest>(
              encoded, format == ser::WireFormat::kFlatBuffers
                           ? ser::FlatBufMode::kStandard
                           : ser::FlatBufMode::kOptimized);
      benchmark::DoNotOptimize(checksum);
    } else {
      auto decoded =
          ser::decode<s1ap::InitialContextSetupRequest>(format, encoded);
      benchmark::DoNotOptimize(decoded);
    }
  }
  state.SetLabel(std::string(ser::to_string(format)));
}

void AllFormats(benchmark::internal::Benchmark* b) {
  for (const auto format : ser::kAllWireFormats) {
    b->Arg(static_cast<int>(format));
  }
}

BENCHMARK(BM_Encode)->Apply(AllFormats);
BENCHMARK(BM_Decode)->Apply(AllFormats);

}  // namespace
}  // namespace neutrino

BENCHMARK_MAIN();
