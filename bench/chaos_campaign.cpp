// Chaos campaign driver: randomized failure schedules with an online
// invariant checker, run differentially across the legacy System, the
// 1-shard runtime and a multi-shard multithreaded runtime.
//
// Per seed: generate a Schedule (workload + CPF crash bursts + targeted
// replica-set wipes + CTA crashes), run it on every runtime, assert zero
// invariant violations, and assert the legacy and 1-shard runs agree
// exactly (started/completed/lost/recovery histogram). A failing seed is
// shrunk to a minimal reproducer and dumped as a replayable JSON
// artifact whose path is printed in the error message.
//
// Modes:
//   --seeds=N        campaign size (default 500; --smoke = 50)
//   --overload=N     kOverload storms per schedule (default 2; 0 disables
//                    and restores pre-overload schedules byte-for-byte)
//   --shards=K       multi-shard row's shard count (default 4)
//   --threads=a,b    worker threads for the multi-shard row (max used)
//   --inject=stale|prune
//                    teeth check: plant a deliberate bug (stale RYW serve
//                    or unaccounted log prune), expect the checker to
//                    catch it and the shrinker to cut the reproducer to
//                    <= 10 events; exits non-zero if the bug survives.
//   --replay=FILE    re-run a dumped reproducer (exits 0 iff it still
//                    fails, i.e. the artifact reproduces).
//   --repro-dir=DIR  where reproducer artifacts are written (default ".")
//   --report=PATH    JSON campaign report (schema neutrino.chaos-campaign)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chaos/generator.hpp"
#include "chaos/runner.hpp"
#include "chaos/shrink.hpp"

namespace {

using neutrino::SimTime;
namespace chaos = neutrino::chaos;
namespace core = neutrino::core;
namespace sim = neutrino::sim;
namespace bench = neutrino::bench;
namespace obs = neutrino::obs;
namespace trace = neutrino::trace;
namespace traffic = neutrino::traffic;

/// --scenario=NAME: overlay a traffic-engine scenario onto a generated
/// schedule as plain kProcedure events (the generator's own failure and
/// overload actions are untouched — chaos::generate draws byte-identical
/// with or without the flag, so the same seed crashes the same CPFs at
/// the same instants; only the foreground workload changes).
void overlay_scenario(chaos::Schedule& s, const std::string& name,
                      const traffic::ScenarioRequest& req) {
  const auto gen = traffic::generate_scenario(name, req);
  s.events.reserve(s.events.size() + gen->records.size());
  for (const trace::TraceRecord& rec : gen->records) {
    chaos::Event e;
    e.at = rec.at;
    e.kind = chaos::EventKind::kProcedure;
    e.ue = rec.ue.value();
    e.proc = rec.type;
    e.target_region = rec.target_region;
    s.events.push_back(e);
  }
  // Equal-timestamp order stays deterministic: generator events first
  // (their original order), then scenario arrivals (generation order).
  std::stable_sort(s.events.begin(), s.events.end(),
                   [](const chaos::Event& a, const chaos::Event& b) {
                     return a.at < b.at;
                   });
}

struct CampaignArgs {
  std::uint64_t seeds = 500;
  std::uint32_t overload_bursts = 2;  // kOverload storms per schedule
  std::string inject;      // "", "stale", "prune"
  std::string replay;      // reproducer path
  std::string repro_dir = ".";
};

CampaignArgs parse_campaign(int argc, char** argv, bool smoke) {
  CampaignArgs a;
  if (smoke) a.seeds = 50;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--seeds=", 0) == 0) {
      a.seeds = std::strtoull(std::string{arg.substr(8)}.c_str(), nullptr, 10);
    } else if (arg.rfind("--overload=", 0) == 0) {
      a.overload_bursts = static_cast<std::uint32_t>(
          std::strtoul(std::string{arg.substr(11)}.c_str(), nullptr, 10));
    } else if (arg.rfind("--inject=", 0) == 0) {
      a.inject = std::string{arg.substr(9)};
    } else if (arg.rfind("--replay=", 0) == 0) {
      a.replay = std::string{arg.substr(9)};
    } else if (arg.rfind("--repro-dir=", 0) == 0) {
      a.repro_dir = std::string{arg.substr(12)};
    }
  }
  return a;
}

core::FaultInjection faults_for(const std::string& inject) {
  core::FaultInjection f;
  // A few charges so the first one being burned on an attach-type reply
  // (whose RYW check legitimately skips) cannot hide the bug.
  if (inject == "stale") f.cpf_stale_serves = 3;
  if (inject == "prune") f.cta_unaccounted_prunes = 3;
  return f;
}

std::string dump_artifact(const chaos::ScheduleArtifact& art,
                          const std::string& dir, const char* tag) {
  std::string path = dir + "/chaos_repro_" + tag + "_seed" +
                     std::to_string(art.schedule.seed) + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "chaos: cannot write reproducer to %s\n",
                 path.c_str());
    return path;
  }
  out << chaos::to_json(art).dump(2);
  return path;
}

/// Re-run a (minimal) failing schedule with the flight recorder armed and
/// write the merged ring next to the reproducer: `X.json` → `X.flight.json`.
/// The timeline of crashes/sheds/retransmissions leading up to the
/// violation ships with the artifact (DESIGN.md §15).
std::string write_flight_dump(const chaos::Schedule& s, chaos::RunConfig rc,
                              const core::CostModel& costs,
                              const std::string& repro_path) {
  rc.record_flight = true;
  const chaos::RunOutcome out = chaos::run_schedule(s, rc, costs);
  std::string path = repro_path;
  const std::string suffix = ".json";
  if (path.size() >= suffix.size() &&
      path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
    path.resize(path.size() - suffix.size());
  }
  path += ".flight.json";
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "chaos: cannot write flight dump to %s\n",
                 path.c_str());
    return path;
  }
  f << out.flight_json;
  return path;
}

/// Aggregates for one runtime configuration across the whole campaign.
struct RuntimeAgg {
  std::string name;
  chaos::RunConfig rc;
  std::uint64_t violations = 0;
  std::uint64_t lost = 0;
  std::uint64_t unquiesced = 0;
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  std::uint64_t attach_sheds = 0;
  std::uint64_t overload_drops = 0;
  std::uint64_t nas_retransmissions = 0;
  std::uint64_t retx_exhausted = 0;
  std::map<std::string, std::uint64_t> recoveries;

  void add(const chaos::RunOutcome& o) {
    violations += o.violation_count;
    lost += o.lost;
    if (!o.quiesced) ++unquiesced;
    started += o.started;
    completed += o.completed;
    attach_sheds += o.attach_sheds;
    overload_drops += o.overload_drops;
    nas_retransmissions += o.nas_retransmissions;
    retx_exhausted += o.retx_exhausted;
    for (const auto& [k, v] : o.recoveries) recoveries[k] += v;
  }
};

bool same_outcome(const chaos::RunOutcome& a, const chaos::RunOutcome& b) {
  return a.started == b.started && a.completed == b.completed &&
         a.lost == b.lost && a.violation_count == b.violation_count &&
         a.recoveries == b.recoveries && a.attach_sheds == b.attach_sheds &&
         a.overload_drops == b.overload_drops &&
         a.nas_retransmissions == b.nas_retransmissions &&
         a.retx_exhausted == b.retx_exhausted;
}

int run_replay(const CampaignArgs& args, const core::CostModel& costs) {
  std::ifstream in(args.replay);
  if (!in) {
    std::fprintf(stderr, "chaos: cannot open %s\n", args.replay.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const auto art = chaos::artifact_from_string(buf.str());
  if (!art) {
    std::fprintf(stderr, "chaos: %s is not a chaos-repro artifact\n",
                 args.replay.c_str());
    return 2;
  }
  chaos::RunConfig rc;
  rc.faults = art->faults;
  rc.record_flight = true;
  const chaos::RunOutcome out = chaos::run_schedule(art->schedule, rc, costs);
  std::printf(
      "chaos\treplay\tseed=%llu\tevents=%zu\tviolations=%llu\t"
      "flight_events=%llu\n",
      static_cast<unsigned long long>(art->schedule.seed),
      art->schedule.events.size(),
      static_cast<unsigned long long>(out.violation_count),
      static_cast<unsigned long long>(out.flight_events));
  for (const std::string& v : out.violations) {
    std::printf("#   %s\n", v.c_str());
  }
  // A reproducer artifact is, by construction, a failing schedule: the
  // replay "passes" when it still fails.
  return out.violation_count > 0 ? 0 : 1;
}

int run_teeth(const CampaignArgs& args, const core::CostModel& costs) {
  chaos::GeneratorConfig gen;
  gen.regions = 4;
  gen.ues = 12;
  gen.actions = 40;
  gen.failure_bursts = 2;
  gen.cta_crash_prob = 0.0;  // keep the teeth run about the planted bug
  chaos::RunConfig rc;
  rc.faults = faults_for(args.inject);
  if (rc.faults.cpf_stale_serves == 0 && rc.faults.cta_unaccounted_prunes == 0) {
    std::fprintf(stderr, "chaos: unknown --inject=%s (stale|prune)\n",
                 args.inject.c_str());
    return 2;
  }
  const auto fails = [&](const chaos::Schedule& trial) {
    return chaos::run_schedule(trial, rc, costs).violation_count > 0;
  };
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    chaos::Schedule s = chaos::generate(gen, seed);
    if (!fails(s)) continue;
    chaos::ShrinkStats st;
    const chaos::Schedule min = chaos::shrink_schedule(s, fails, 400, &st);
    const std::string path =
        dump_artifact({min, rc.faults}, args.repro_dir, args.inject.c_str());
    const std::string flight = write_flight_dump(min, rc, costs, path);
    std::printf(
        "chaos\tinject=%s\tseed=%llu\tcaught\tshrunk %zu -> %zu events "
        "(%zu runs)\treproducer=%s\tflight=%s\n",
        args.inject.c_str(), static_cast<unsigned long long>(seed),
        s.events.size(), min.events.size(), st.runs, path.c_str(),
        flight.c_str());
    if (min.events.size() > 10) {
      std::fprintf(stderr,
                   "chaos: FAIL: reproducer still has %zu events (> 10)\n",
                   min.events.size());
      return 1;
    }
    return 0;
  }
  std::fprintf(stderr,
               "chaos: FAIL: planted '%s' bug was not caught in 10 seeds\n",
               args.inject.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
  const CampaignArgs args = parse_campaign(argc, argv, opts.smoke);
  const core::FixedCostModel costs;

  if (!args.replay.empty()) return run_replay(args, costs);
  if (!args.inject.empty()) return run_teeth(args, costs);

  const std::uint32_t shards = opts.shards != 0 ? opts.shards : 4;
  std::uint32_t threads = 2;
  for (const std::uint32_t t : opts.threads) threads = std::max(threads, t);

  chaos::GeneratorConfig gen;
  gen.regions = 8;  // blocks of 2 under 4 shards: CTA crashes stay legal
  gen.cpfs_per_region = 5;
  // 6 UEs per region: an overload storm (every idle UE of one region at
  // once) overflows overload_proto's capacity-4 queues, so storms really
  // shed and retransmit rather than slipping under the bound.
  gen.ues = 48;
  gen.shards = shards;
  gen.actions = 120;
  gen.failure_bursts = 6;
  gen.overload_bursts = args.overload_bursts;

  // Scenario overlay parameters: the scenario replaces none of the
  // generated schedule — it adds a realistic foreground at roughly the
  // generator's own action rate, re-seeded per campaign seed.
  const traffic::ScenarioInfo* scen = bench::require_scenario(opts.scenario);
  traffic::ScenarioRequest screq;
  if (scen != nullptr) {
    screq.population = gen.ues;
    screq.regions = static_cast<int>(gen.regions);
    screq.duration = gen.window;
    screq.target_pps = static_cast<double>(gen.actions) / gen.window.sec();
  }

  std::printf("# chaos — randomized failure campaign\n");
  if (scen != nullptr) {
    std::printf("# scenario overlay: %s (~%.0f arrivals/s)\n",
                std::string(scen->name).c_str(), screq.target_pps);
  }
  std::printf(
      "# %llu seeds, %u regions x %u CPFs, %u UEs, %u overload storms; "
      "runtimes: legacy, sharded-1x1, sharded-%ux%u\n",
      static_cast<unsigned long long>(args.seeds), gen.regions,
      gen.cpfs_per_region, gen.ues, gen.overload_bursts, shards, threads);

  // Placement oracle for targeted replica-set wipes (never run).
  sim::EventLoop oracle_loop;
  core::Metrics oracle_metrics;
  chaos::Schedule proto_schedule;
  proto_schedule.regions = gen.regions;
  proto_schedule.cpfs_per_region = gen.cpfs_per_region;
  core::System oracle(oracle_loop, core::neutrino_policy(),
                      chaos::make_topology(proto_schedule),
                      chaos::chaos_proto(), costs, oracle_metrics);

  std::vector<RuntimeAgg> runtimes;
  {
    RuntimeAgg legacy;
    legacy.name = "legacy";
    runtimes.push_back(std::move(legacy));
    RuntimeAgg one;
    one.name = "sharded-1";
    one.rc.use_sharded = true;
    runtimes.push_back(std::move(one));
    RuntimeAgg multi;
    multi.name = "sharded-" + std::to_string(shards);
    multi.rc.use_sharded = true;
    multi.rc.shards = shards;
    multi.rc.threads = threads;
    runtimes.push_back(std::move(multi));
  }

  struct Failure {
    std::uint64_t seed;
    std::string runtime;
    std::uint64_t violations;
    std::string reproducer;
    std::string flight;
    std::string first;
  };
  std::vector<Failure> failures;
  std::uint64_t mismatches = 0;
  constexpr std::size_t kMaxShrinks = 3;

  for (std::uint64_t seed = 1; seed <= args.seeds; ++seed) {
    chaos::Schedule s = chaos::generate(gen, seed, &oracle);
    if (scen != nullptr) {
      screq.seed = seed;
      overlay_scenario(s, opts.scenario, screq);
    }
    std::vector<chaos::RunOutcome> outs;
    outs.reserve(runtimes.size());
    for (RuntimeAgg& rt : runtimes) {
      outs.push_back(chaos::run_schedule(s, rt.rc, costs));
      rt.add(outs.back());
    }
    for (std::size_t i = 0; i < runtimes.size(); ++i) {
      if (outs[i].violation_count == 0) continue;
      Failure f;
      f.seed = seed;
      f.runtime = runtimes[i].name;
      f.violations = outs[i].violation_count;
      f.first = outs[i].violations.empty() ? "" : outs[i].violations.front();
      if (failures.size() < kMaxShrinks) {
        const chaos::RunConfig rc = runtimes[i].rc;
        const auto fails = [&rc, &costs](const chaos::Schedule& trial) {
          return chaos::run_schedule(trial, rc, costs).violation_count > 0;
        };
        const chaos::Schedule min = chaos::shrink_schedule(s, fails, 400);
        f.reproducer = dump_artifact({min, rc.faults}, args.repro_dir,
                                     runtimes[i].name.c_str());
        f.flight = write_flight_dump(min, rc, costs, f.reproducer);
      }
      std::fprintf(stderr,
                   "chaos: seed %llu violated %llu invariant(s) on %s%s%s\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(f.violations),
                   f.runtime.c_str(),
                   f.reproducer.empty() ? "" : "; reproducer: ",
                   f.reproducer.c_str());
      if (!f.first.empty()) {
        std::fprintf(stderr, "chaos:   first: %s\n", f.first.c_str());
      }
      failures.push_back(std::move(f));
    }
    // Differential check: the 1-shard runtime is documented to be exactly
    // the legacy loop — any outcome drift is a runtime-layer bug.
    if (!same_outcome(outs[0], outs[1])) {
      ++mismatches;
      std::fprintf(stderr,
                   "chaos: seed %llu: legacy and sharded-1 outcomes differ\n",
                   static_cast<unsigned long long>(seed));
    }
  }

  for (const RuntimeAgg& rt : runtimes) {
    std::string rec;
    for (const auto& [k, v] : rt.recoveries) {
      rec += k + "=" + std::to_string(v) + " ";
    }
    std::printf(
        "chaos\t%s\tseeds=%llu\tviolations=%llu\tstarted=%llu\t"
        "completed=%llu\tlost=%llu\tunquiesced=%llu\tsheds=%llu\t"
        "drops=%llu\tretx=%llu\texhausted=%llu\trecoveries: %s\n",
        rt.name.c_str(), static_cast<unsigned long long>(args.seeds),
        static_cast<unsigned long long>(rt.violations),
        static_cast<unsigned long long>(rt.started),
        static_cast<unsigned long long>(rt.completed),
        static_cast<unsigned long long>(rt.lost),
        static_cast<unsigned long long>(rt.unquiesced),
        static_cast<unsigned long long>(rt.attach_sheds),
        static_cast<unsigned long long>(rt.overload_drops),
        static_cast<unsigned long long>(rt.nas_retransmissions),
        static_cast<unsigned long long>(rt.retx_exhausted), rec.c_str());
  }

  obs::Json doc;
  doc["schema"] = "neutrino.chaos-campaign";
  doc["version"] = 1;
  doc["figure"] = "chaos";
  doc["title"] = "Randomized failure campaign with online invariant checker";
  doc["config"]["seeds"] = args.seeds;
  doc["config"]["regions"] = gen.regions;
  doc["config"]["cpfs_per_region"] = gen.cpfs_per_region;
  doc["config"]["ues"] = gen.ues;
  doc["config"]["actions"] = gen.actions;
  doc["config"]["failure_bursts"] = gen.failure_bursts;
  doc["config"]["overload_bursts"] = gen.overload_bursts;
  doc["config"]["window_ns"] = static_cast<std::int64_t>(gen.window.ns());
  doc["config"]["shards"] = shards;
  doc["config"]["threads"] = threads;
  if (scen != nullptr) {
    // The overlay re-seeds per campaign seed; echo the shared parameters
    // with seed 0 as the placeholder.
    traffic::ScenarioRequest echo = screq;
    echo.seed = 0;
    bench::echo_scenario_config(doc["config"], *scen, echo);
  }
  doc["seeds_run"] = args.seeds;
  doc["mismatches"] = mismatches;
  obs::Json& rows = doc["per_runtime"];
  rows.make_array();
  for (const RuntimeAgg& rt : runtimes) {
    obs::Json& row = rows.push_back(obs::Json{});
    row["system"] = rt.name;
    row["violations"] = rt.violations;
    row["started"] = rt.started;
    row["completed"] = rt.completed;
    row["lost"] = rt.lost;
    row["unquiesced"] = rt.unquiesced;
    row["attach_sheds"] = rt.attach_sheds;
    row["overload_drops"] = rt.overload_drops;
    row["nas_retransmissions"] = rt.nas_retransmissions;
    row["retx_exhausted"] = rt.retx_exhausted;
    obs::Json& rec = row["recoveries"];
    rec.make_object();
    for (const auto& [k, v] : rt.recoveries) rec[k] = v;
  }
  obs::Json& fail_rows = doc["failing_seeds"];
  fail_rows.make_array();
  for (const Failure& f : failures) {
    obs::Json& row = fail_rows.push_back(obs::Json{});
    row["seed"] = f.seed;
    row["runtime"] = f.runtime;
    row["violations"] = f.violations;
    if (!f.reproducer.empty()) row["reproducer"] = f.reproducer;
    if (!f.flight.empty()) row["flight"] = f.flight;
    if (!f.first.empty()) row["first_violation"] = f.first;
  }
  const std::string out = doc.dump(2);
  if (opts.report_path.empty()) {
    std::printf("%s", out.c_str());
  } else if (FILE* fp = std::fopen(opts.report_path.c_str(), "w")) {
    std::fwrite(out.data(), 1, out.size(), fp);
    std::fclose(fp);
    std::printf("# report: %s\n", opts.report_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write report to %s\n",
                 opts.report_path.c_str());
  }

  if (!failures.empty() || mismatches != 0) {
    std::fprintf(
        stderr, "chaos: FAIL: %zu failing seed(s), %llu mismatch(es)\n",
        failures.size(), static_cast<unsigned long long>(mismatches));
    return 1;
  }
  std::printf("# chaos: all %llu seeds clean on every runtime\n",
              static_cast<unsigned long long>(args.seeds));
  return 0;
}
