// Fig. 7: service-request PCT vs procedures-per-second, uniform traffic,
// four systems.
//
// Paper: up to 120 KPPS Neutrino is 2.3x / 1.3x / 3.4x better than
// existing EPC / DPCM / SkyCore; beyond 140 KPPS EPC and SkyCore cannot
// hold the arrival rate; at 200 KPPS+ everyone saturates but Neutrino
// stays best.
#include "bench_util.hpp"

using namespace neutrino;

int main(int argc, char** argv) {
  bench::Report report(
      argc, argv, "fig07", "service request PCT, uniform traffic",
      "Neutrino 2.3x/1.3x/3.4x vs EPC/DPCM/SkyCore; EPC+SkyCore die >140K");
  const std::vector<double> rates =
      report.smoke() ? std::vector<double>{40e3}
                     : std::vector<double>{100e3, 120e3, 140e3, 160e3,
                                           180e3, 200e3, 220e3};
  const SimTime duration =
      SimTime::milliseconds(report.smoke() ? 100 : 1000);
  report.config()["rates_pps"].make_array();
  for (const double r : rates) report.config()["rates_pps"].push_back(r);
  report.config()["duration_ms"] = duration.ms();
  const core::CorePolicy policies[] = {
      core::existing_epc_policy(), core::dpcm_policy(),
      core::skycore_policy(), core::neutrino_policy()};
  for (const auto& policy : policies) {
    for (const double rate : rates) {
      bench::ExperimentConfig cfg;
      cfg.policy = policy;
      // Where does service-request time go? (--no-decompose to disable)
      cfg.trace_decomposition = report.decompose();
      const auto population = static_cast<std::uint64_t>(rate * 1.2);
      cfg.preattached_ues = population;
      trace::ProcedureMix mix{.service_request = 1.0};
      trace::UniformWorkload workload(rate, duration, mix, /*seed=*/42);
      const auto t = workload.generate(population, cfg.topo.total_regions());
      const auto result = bench::run_experiment(cfg, t);
      report.add_pct_row(policy.name, rate,
                         result.metrics.pct[static_cast<std::size_t>(
                             core::ProcedureType::kServiceRequest)],
                         &result);
    }
  }
  return 0;
}
