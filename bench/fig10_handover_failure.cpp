// Fig. 10: handover PCT *under CPF failure*, uniform traffic.
//
// Paper: up to 5.6x better median PCT below 60 KPPS — instead of
// re-attaching, the CTA replays logged messages onto the replica, saving
// multiple round trips. (PCT excludes failure detection time, as in §6.4.)
#include "bench_util.hpp"

using namespace neutrino;

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "fig10", "handover PCT under CPF failure",
                       "Neutrino up to 5.6x better median PCT (<60 KPPS)");
  const std::vector<double> rates =
      report.smoke()
          ? std::vector<double>{40e3}
          : std::vector<double>{40e3, 60e3, 80e3, 100e3, 120e3, 140e3, 160e3};
  const SimTime duration =
      SimTime::milliseconds(report.smoke() ? 400 : 1500);
  report.config()["rates_pps"].make_array();
  for (const double r : rates) report.config()["rates_pps"].push_back(r);
  report.config()["duration_ms"] = duration.ms();
  for (const auto& policy :
       {core::existing_epc_policy(), core::neutrino_policy()}) {
    for (const double rate : rates) {
      bench::ExperimentConfig cfg;
      cfg.policy = policy;
      cfg.topo.l1_per_l2 = 4;
      cfg.topo.latency = bench::testbed_latencies();  // inter-CPF handovers need regions
      cfg.trace_decomposition = report.decompose();
      const auto population = static_cast<std::uint64_t>(rate * 1.2);
      cfg.preattached_ues = population;
      trace::ProcedureMix mix{.handover = 1.0};
      trace::UniformWorkload workload(rate, duration, mix, /*seed=*/42);
      const auto t = workload.generate(population, cfg.topo.total_regions());
      // Crash waves: every 100 ms a CPF per region fails (and is restarted
      // empty 80 ms later, as a real NF respawn would be) — each wave's
      // in-flight procedures go through the recovery path.
      const int waves = report.smoke() ? 1 : 8;
      const auto result = bench::run_experiment(
          cfg, t, [&](core::System& system, sim::EventLoop& loop) {
            for (int wave = 0; wave < waves; ++wave) {
              const SimTime at = SimTime::milliseconds(250 + 140 * wave);
              for (int region = 0; region < cfg.topo.total_regions();
                   ++region) {
                const CpfId victim = cfg.topo.cpf_at(
                    static_cast<std::uint32_t>(region),
                    wave % cfg.topo.cpfs_per_region);
                loop.schedule_at(at, [&system, victim] {
                  system.crash_cpf(victim);
                });
                loop.schedule_at(at + SimTime::milliseconds(70),
                                 [&system, victim] {
                                   system.restore_cpf(victim);
                                 });
              }
            }
          });
      report.add_pct_row(policy.name, rate,
                         result.metrics.pct_under_failure[static_cast<
                             std::size_t>(core::ProcedureType::kHandover)],
                         &result, "pct_under_failure_ms");
    }
  }
  return 0;
}
