// google-benchmark microbenchmarks over the simulation core: event
// schedule+dispatch throughput (the seed's std::function priority_queue
// vs the InlineTask 4-ary heap, wheel on/off) and Msg recycling (MsgPool
// vs heap new/delete). Companion to bench/scale_throughput.cpp, which
// measures the same machinery end-to-end; this isolates the primitives.
//
// The ISSUE acceptance bar lives here: the new loop must sustain >= 3x
// the legacy schedule+dispatch throughput for callbacks that fit the
// 48-byte inline buffer (tests/sim_core_test.cpp separately proves the
// zero-heap-allocation property).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/msg_pool.hpp"
#include "sim/event_loop.hpp"

namespace neutrino {
namespace {

/// The seed's event loop, verbatim in miniature: std::priority_queue of
/// std::function events (heap node per push, type-erasure allocation for
/// any capture beyond the ~16-byte std::function SBO).
class LegacyLoop {
 public:
  using Callback = std::function<void()>;

  void schedule_at(SimTime when, Callback cb) {
    queue_.push(Event{when, next_seq_++, std::move(cb)});
  }

  void run() {
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = ev.when;
      ev.callback();
    }
  }

  void run_until(SimTime horizon) {
    while (!queue_.empty() && queue_.top().when <= horizon) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = ev.when;
      ev.callback();
    }
    if (now_ < horizon) now_ = horizon;
  }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback callback;
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_;
  std::uint64_t next_seq_ = 0;
};

/// Representative transport capture: the pooled paths capture
/// {this, region, Handle} = 24-32 bytes; pad to 32 to model them.
struct Payload {
  std::uint64_t v[4];
};

constexpr int kBatch = 1024;

/// Storm regime: a million-UE run keeps tens of thousands of timers
/// pending (ack timeouts, log scans, idle releases) while near-future
/// delivery events churn. Model it as kPending far-future events parked
/// in the queue while each iteration schedules+dispatches a kBatch of
/// near-future events — the seed's binary heap pays O(log kPending)
/// 48-byte-element sifts plus a type-erasure allocation per event; the
/// wheel pays an O(1) bucket insert.
constexpr int kPending = 64 * 1024;
constexpr std::int64_t kSpreadNs = 3'500'000;  // within the wheel span

template <typename Loop>
void steady_state(benchmark::State& state, Loop& loop, std::uint64_t& sink) {
  const Payload p{{1, 2, 3, 4}};
  for (int i = 0; i < kPending; ++i) {  // parked timers, never dispatched
    loop.schedule_at(SimTime::seconds(36'000) + SimTime::nanoseconds(i),
                     [&sink, p] { sink += p.v[1]; });
  }
  std::int64_t base = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      const std::int64_t at = base + (static_cast<std::int64_t>(i) * 6151) %
                                         kSpreadNs;  // co-prime scatter
      loop.schedule_at(SimTime::nanoseconds(at), [&sink, p] {
        sink += p.v[0];
      });
    }
    base += kSpreadNs;
    loop.run_until(SimTime::nanoseconds(base));
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void BM_LegacySteadyState(benchmark::State& state) {
  LegacyLoop loop;
  std::uint64_t sink = 0;
  steady_state(state, loop, sink);
}

void BM_InlineSteadyState(benchmark::State& state) {
  sim::EventLoop::Config cfg;
  cfg.use_timer_wheel = state.range(0) != 0;
  sim::EventLoop loop(cfg);
  std::uint64_t sink = 0;
  steady_state(state, loop, sink);
  state.SetLabel(cfg.use_timer_wheel ? "wheel" : "heap-only");
}

void BM_LegacySchedulePop(benchmark::State& state) {
  std::uint64_t sink = 0;
  const Payload p{{1, 2, 3, 4}};
  for (auto _ : state) {
    LegacyLoop loop;
    for (int i = 0; i < kBatch; ++i) {
      // Reverse order: worst-case sift, and matches the new-loop variant.
      loop.schedule_at(SimTime::nanoseconds(kBatch - i),
                       [&sink, p] { sink += p.v[0]; });
    }
    loop.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void BM_InlineSchedulePop(benchmark::State& state) {
  sim::EventLoop::Config cfg;
  cfg.use_timer_wheel = state.range(0) != 0;
  std::uint64_t sink = 0;
  const Payload p{{1, 2, 3, 4}};
  for (auto _ : state) {
    sim::EventLoop loop(cfg);
    for (int i = 0; i < kBatch; ++i) {
      loop.schedule_at(SimTime::nanoseconds(kBatch - i),
                       [&sink, p] { sink += p.v[0]; });
    }
    loop.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.SetLabel(cfg.use_timer_wheel ? "wheel" : "heap-only");
}

void BM_MsgNewDelete(benchmark::State& state) {
  for (auto _ : state) {
    auto* msg = new core::Msg();
    msg->proc_seq = 7;
    benchmark::DoNotOptimize(msg);
    delete msg;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_MsgPoolAcquireRelease(benchmark::State& state) {
  core::MsgPool pool;
  { auto warm = pool.acquire(core::Msg{}); warm.take(); }  // prime free list
  for (auto _ : state) {
    core::Msg m;
    m.proc_seq = 7;
    auto h = pool.acquire(std::move(m));
    core::Msg back = h.take();
    benchmark::DoNotOptimize(back.proc_seq);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_LegacySchedulePop);
BENCHMARK(BM_InlineSchedulePop)->Arg(0)->Arg(1);
BENCHMARK(BM_LegacySteadyState);
BENCHMARK(BM_InlineSteadyState)->Arg(0)->Arg(1);
BENCHMARK(BM_MsgNewDelete);
BENCHMARK(BM_MsgPoolAcquireRelease);

}  // namespace
}  // namespace neutrino

BENCHMARK_MAIN();
