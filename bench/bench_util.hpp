// Shared experiment driver for the figure-reproduction benches.
//
// Each bench binary regenerates one figure of the paper's evaluation: it
// builds the simulated core under each compared policy, replays the
// figure's workload, and prints the same series the paper plots
// (tab-separated; percentiles for the box plots). Absolute numbers depend
// on this machine; the *shape* is the reproduction target (DESIGN.md §5).
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "core/cost_model.hpp"
#include "core/system.hpp"
#include "trace/workload.hpp"

namespace neutrino::bench {

/// The real-codec cost model, measured once per bench binary.
inline const core::MeasuredCostModel& measured_costs() {
  static const core::MeasuredCostModel model;
  return model;
}

/// The paper's testbed runs every core node on two directly-cabled
/// servers: region boundaries exist logically but add no propagation
/// delay. The handover/failure/application figures use this profile; the
/// library defaults model a geographically spread edge deployment.
inline core::LatencyConfig testbed_latencies() {
  core::LatencyConfig l;
  l.intra_l2 = SimTime::microseconds(30);
  l.inter_l2 = SimTime::microseconds(30);
  return l;
}

struct ExperimentResult {
  core::Metrics metrics;
  double sim_seconds = 0;
};

struct ExperimentConfig {
  core::CorePolicy policy;
  core::TopologyConfig topo;
  core::ProtocolConfig proto;
  /// Pre-attach this many UEs (ids [0, n)) round-robin across regions.
  std::uint64_t preattached_ues = 0;
  /// Run this long past the last scheduled arrival.
  SimTime drain = SimTime::seconds(30);
};

/// Build a system, replay a trace, run to completion, return the metrics.
/// `extra_setup(system, loop)` runs before the replay (failure injection);
/// `post(system)` runs after the loop drains (outage queries etc.).
template <typename SetupFn, typename PostFn>
ExperimentResult run_experiment(const ExperimentConfig& cfg,
                                const std::vector<trace::TraceRecord>& t,
                                SetupFn&& extra_setup, PostFn&& post) {
  sim::EventLoop loop;
  core::Metrics metrics;
  core::System system(loop, cfg.policy, cfg.topo, cfg.proto,
                      measured_costs(), metrics);
  const auto regions =
      static_cast<std::uint32_t>(cfg.topo.total_regions());
  for (std::uint64_t ue = 0; ue < cfg.preattached_ues; ++ue) {
    system.frontend().preattach(UeId(ue),
                                static_cast<std::uint32_t>(ue % regions));
  }
  extra_setup(system, loop);
  trace::replay(system, t);
  SimTime horizon = cfg.drain;
  if (!t.empty()) horizon += t.back().at;
  loop.run_until(horizon);
  post(system);
  return {std::move(metrics), horizon.sec()};
}

template <typename SetupFn>
ExperimentResult run_experiment(const ExperimentConfig& cfg,
                                const std::vector<trace::TraceRecord>& t,
                                SetupFn&& extra_setup) {
  return run_experiment(cfg, t, std::forward<SetupFn>(extra_setup),
                        [](core::System&) {});
}

inline ExperimentResult run_experiment(
    const ExperimentConfig& cfg, const std::vector<trace::TraceRecord>& t) {
  return run_experiment(cfg, t, [](core::System&, sim::EventLoop&) {},
                        [](core::System&) {});
}

/// Print one box-plot row: label, x, then the PCT distribution in ms.
inline void print_pct_row(const char* figure, std::string_view system_name,
                          double x, const LatencyRecorder& pct) {
  if (pct.empty()) {
    std::printf("%s\t%s\t%.0f\tno-samples\n", figure,
                std::string(system_name).c_str(), x);
    return;
  }
  std::printf(
      "%s\t%s\t%.0f\tn=%zu\tp25=%.3f\tp50=%.3f\tp75=%.3f\tp99=%.3f\t"
      "max=%.3f\n",
      figure, std::string(system_name).c_str(), x, pct.count(), pct.p25(),
      pct.median(), pct.p75(), pct.p99(), pct.max());
}

inline void print_header(const char* figure, const char* title,
                         const char* paper_claim) {
  std::printf("# %s — %s\n", figure, title);
  std::printf("# paper: %s\n", paper_claim);
}

}  // namespace neutrino::bench
