// Shared experiment driver for the figure-reproduction benches.
//
// Each bench binary regenerates one figure of the paper's evaluation: it
// builds the simulated core under each compared policy, replays the
// figure's workload, and prints the same series the paper plots
// (tab-separated; percentiles for the box plots). Absolute numbers depend
// on this machine; the *shape* is the reproduction target (DESIGN.md §5).
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/cost_model.hpp"
#include "core/sharded_system.hpp"
#include "core/system.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "obs/slo.hpp"
#include "obs/throughput.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "trace/workload.hpp"
#include "traffic/scenario.hpp"

namespace neutrino::bench {

/// The real-codec cost model, measured once per bench binary.
inline const core::MeasuredCostModel& measured_costs() {
  static const core::MeasuredCostModel model;
  return model;
}

/// The paper's testbed runs every core node on two directly-cabled
/// servers: region boundaries exist logically but add no propagation
/// delay. The handover/failure/application figures use this profile; the
/// library defaults model a geographically spread edge deployment.
inline core::LatencyConfig testbed_latencies() {
  core::LatencyConfig l;
  l.intra_l2 = SimTime::microseconds(30);
  l.inter_l2 = SimTime::microseconds(30);
  return l;
}

struct ExperimentResult {
  core::Metrics metrics;
  double sim_seconds = 0;
  /// Events the loop dispatched and the wall-clock it took: the
  /// events/sec throughput figure for scale benches.
  std::uint64_t events_executed = 0;
  double wall_seconds = 0;
  /// Sharded-runtime runs only (run_sharded_experiment): partitioning,
  /// conservative-window and cross-shard traffic figures. shard_events is
  /// empty for legacy single-threaded runs — report rows key off that.
  std::uint32_t shards = 1;
  std::uint32_t threads = 1;
  std::uint64_t windows = 0;
  std::uint64_t cross_shard_messages = 0;
  /// Adaptive-window accounting (deterministic; zero with the static
  /// schedule): shard-windows widened past the static bound, and
  /// shard-windows skipped because nothing preceded their horizon.
  std::uint64_t adaptive_extensions = 0;
  std::uint64_t dispatches_skipped = 0;
  std::vector<std::uint64_t> shard_events;
  /// Retained for --trace-out export when the run traced (null otherwise).
  std::unique_ptr<obs::ProcTracer> tracer;
  /// Per-window shard activity (sharded runs with record_trace_events):
  /// the Perfetto shard tracks.
  std::vector<obs::ShardWindowRecord> window_log;
};

struct ExperimentConfig {
  core::CorePolicy policy;
  core::TopologyConfig topo;
  core::ProtocolConfig proto;
  /// Pre-attach this many UEs (ids [0, n)) round-robin across regions.
  std::uint64_t preattached_ues = 0;
  /// Run this long past the last scheduled arrival.
  SimTime drain = SimTime::seconds(30);
  /// Attach a decomposition tracer for the run: every completed
  /// procedure's latency is split by hop class into the result registry's
  /// "core.pct_decomp_ms{component=..,proc=..}" histograms (components
  /// tile the PCT exactly; "total" is recorded alongside). Off by
  /// default — tracing then costs one null test per hop site.
  bool trace_decomposition = false;
  /// Constant-memory PCT accounting (streaming mean/max, no retained
  /// samples) for storm-scale runs; percentile queries are then invalid.
  bool streaming_pct = false;
  /// Arm the deep-telemetry layer (DESIGN.md §15) at this sim-time
  /// cadence: windowed series plus per-procedure SLO burn tracking,
  /// exported as the row's "timeseries"/"slo" sections. Zero (default) =
  /// fully off — the run does not even schedule sampling ticks.
  SimTime telemetry_window;
  /// Retain hop-event timelines (slowest + failed spans) for Perfetto
  /// export; in sharded runs also log per-window shard activity.
  bool record_trace_events = false;
  /// Sharded runs only: per-destination adaptive windows (DESIGN.md §16).
  /// Benches default on — outcome determinism across thread counts is
  /// unaffected and window count drops sharply; the scale bench emits an
  /// explicit adaptive-off row for comparison.
  bool adaptive_lookahead = true;
  /// Sharded runs only: boundary drain staging batch (0 = unstaged).
  std::size_t drain_batch = 64;
};

/// Default per-procedure SLO targets for bench telemetry, loose enough
/// that a healthy testbed run burns ≈0 and a failure/overload window
/// visibly burns >1. All in milliseconds of PCT.
inline std::vector<std::pair<core::ProcedureType, obs::SloTarget>>
default_slo_targets() {
  using PT = core::ProcedureType;
  return {
      {PT::kAttach, {2.0, 4.0, 8.0}},
      {PT::kServiceRequest, {1.0, 2.0, 4.0}},
      {PT::kHandover, {1.5, 3.0, 6.0}},
      {PT::kIntraHandover, {1.0, 2.0, 4.0}},
      {PT::kReattach, {4.0, 8.0, 16.0}},
      {PT::kDetach, {1.0, 2.0, 4.0}},
      {PT::kTau, {1.0, 2.0, 4.0}},
  };
}

/// Build a system, replay a trace, run to completion, return the metrics.
/// `extra_setup(system, loop)` runs before the replay (failure injection);
/// `post(system)` runs after the loop drains (outage queries etc.).
template <typename SetupFn, typename PostFn>
ExperimentResult run_experiment(const ExperimentConfig& cfg,
                                const std::vector<trace::TraceRecord>& t,
                                SetupFn&& extra_setup, PostFn&& post) {
  sim::EventLoop loop;
  core::Metrics metrics;
  if (cfg.streaming_pct) metrics.use_streaming_pct();
  core::System system(loop, cfg.policy, cfg.topo, cfg.proto,
                      measured_costs(), metrics);
  std::unique_ptr<obs::ProcTracer> tracer;
  if (cfg.trace_decomposition || cfg.record_trace_events) {
    obs::TracerConfig tc;
    tc.record_events = cfg.record_trace_events;
    tc.keep_slowest = cfg.record_trace_events ? 16 : 8;
    tc.keep_failed = cfg.record_trace_events ? 16 : 0;
    tracer = std::make_unique<obs::ProcTracer>(
        tc, cfg.trace_decomposition ? &metrics.registry : nullptr);
    system.attach_tracer(*tracer);
  }
  const auto regions =
      static_cast<std::uint32_t>(cfg.topo.total_regions());
  for (std::uint64_t ue = 0; ue < cfg.preattached_ues; ++ue) {
    system.frontend().preattach(UeId(ue),
                                static_cast<std::uint32_t>(ue % regions));
  }
  extra_setup(system, loop);
  trace::replay(system, t);
  SimTime horizon = cfg.drain;
  if (!t.empty()) horizon += t.back().at;
  if (cfg.telemetry_window.ns() > 0) {
    system.arm_telemetry(cfg.telemetry_window, horizon);
    metrics.arm_slo(cfg.telemetry_window, default_slo_targets());
  }
  obs::WallTimer wall;
  loop.run_until(horizon);
  const double wall_seconds = wall.seconds();
  post(system);
  ExperimentResult result{std::move(metrics), horizon.sec(), loop.executed(),
                          wall_seconds};
  result.tracer = std::move(tracer);
  return result;
}

template <typename SetupFn>
ExperimentResult run_experiment(const ExperimentConfig& cfg,
                                const std::vector<trace::TraceRecord>& t,
                                SetupFn&& extra_setup) {
  return run_experiment(cfg, t, std::forward<SetupFn>(extra_setup),
                        [](core::System&) {});
}

inline ExperimentResult run_experiment(
    const ExperimentConfig& cfg, const std::vector<trace::TraceRecord>& t) {
  return run_experiment(cfg, t, [](core::System&, sim::EventLoop&) {},
                        [](core::System&) {});
}

/// Sharded-runtime counterpart of run_experiment: the topology is
/// partitioned across `shards` conservatively-synchronized event loops
/// executed by `threads` workers (DESIGN.md §11). Results are
/// deterministic for a fixed shard count regardless of thread count; the
/// merged metrics are comparable with a legacy run of the same topology.
inline ExperimentResult run_sharded_experiment(
    const ExperimentConfig& cfg, const std::vector<trace::TraceRecord>& t,
    std::uint32_t shards, std::uint32_t threads,
    obs::PhaseProfiler* profiler = nullptr) {
  core::ShardedSystem::Config scfg;
  scfg.policy = cfg.policy;
  scfg.topo = cfg.topo;
  scfg.proto = cfg.proto;
  scfg.shards = shards;
  scfg.threads = threads;
  scfg.adaptive_lookahead = cfg.adaptive_lookahead;
  scfg.drain_batch = cfg.drain_batch;
  scfg.streaming_pct = cfg.streaming_pct;
  core::ShardedSystem sys(scfg, measured_costs());
  sys.set_profiler(profiler);
  if (cfg.record_trace_events) sys.enable_window_log();
  const auto regions = static_cast<std::uint32_t>(cfg.topo.total_regions());
  for (std::uint64_t ue = 0; ue < cfg.preattached_ues; ++ue) {
    sys.preattach(UeId(ue), static_cast<std::uint32_t>(ue % regions));
  }
  sys.replay(t);
  SimTime horizon = cfg.drain;
  if (!t.empty()) horizon += t.back().at;
  if (cfg.telemetry_window.ns() > 0) {
    sys.arm_telemetry(cfg.telemetry_window, horizon);
    sys.arm_slo(cfg.telemetry_window, default_slo_targets());
  }
  obs::WallTimer wall;
  sys.run_until(horizon);
  const double wall_seconds = wall.seconds();
  ExperimentResult result{sys.merged_metrics(), horizon.sec(),
                          sys.events_executed(), wall_seconds, shards,
                          threads};
  result.windows = sys.stats().windows;
  result.cross_shard_messages = sys.stats().cross_messages;
  result.adaptive_extensions = sys.stats().adaptive_extensions;
  result.dispatches_skipped = sys.stats().dispatches_skipped;
  result.shard_events = sys.shard_events();
  if (cfg.record_trace_events) {
    for (const auto& w : sys.window_log()) {
      result.window_log.push_back(
          obs::ShardWindowRecord{w.start, w.end, w.cross_messages, w.executed});
    }
  }
  return result;
}

/// Print one box-plot row: label, x, then the PCT distribution in ms.
inline void print_pct_row(const char* figure, std::string_view system_name,
                          double x, const LatencyRecorder& pct) {
  if (pct.empty()) {
    std::printf("%s\t%s\t%.0f\tno-samples\n", figure,
                std::string(system_name).c_str(), x);
    return;
  }
  std::printf(
      "%s\t%s\t%.0f\tn=%zu\tp25=%.3f\tp50=%.3f\tp75=%.3f\tp99=%.3f\t"
      "max=%.3f\n",
      figure, std::string(system_name).c_str(), x, pct.count(), pct.p25(),
      pct.median(), pct.p75(), pct.p99(), pct.max());
}

inline void print_header(const char* figure, const char* title,
                         const char* paper_claim) {
  std::printf("# %s — %s\n", figure, title);
  std::printf("# paper: %s\n", paper_claim);
}

/// Serialize a Perfetto trace document to `path` (see obs/trace_export.hpp;
/// load at https://ui.perfetto.dev). When `profiler` is non-null the
/// serialization cost is attributed to its kCodec phase (lane 0).
inline bool write_trace_file(const std::string& path, const obs::Json& trace,
                             obs::PhaseProfiler* profiler = nullptr) {
  std::string out;
  {
    auto codec =
        obs::PhaseProfiler::scoped(profiler, 0, obs::Phase::kCodec);
    out = trace.dump(1);
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write trace to %s\n", path.c_str());
    return false;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("# trace: %s\n", path.c_str());
  return true;
}

/// Command-line options every bench understands.
struct BenchOptions {
  /// Shrunk rates/durations for CI (scripts/check.sh): seconds, not
  /// minutes, while still exercising every code path.
  bool smoke = false;
  /// Where the JSON report goes; empty = stdout after the TSV.
  std::string report_path;
  /// Benches that support PCT decomposition run it by default;
  /// --no-decompose measures the tracing-disabled baseline.
  bool decompose = true;
  /// --threads=1,2,8: worker-thread counts for the sharded-runtime rows
  /// of benches that support them (scale_throughput). Empty = legacy
  /// single-threaded rows only.
  std::vector<std::uint32_t> threads;
  /// --shards=N: shard count for the sharded rows. 0 = max of --threads,
  /// so the default sweep measures thread scaling at a fixed partition.
  std::uint32_t shards = 0;
  /// --telemetry: arm the deep-telemetry layer (windowed series + SLO
  /// burn tracking) on benches that support it. Off by default so the
  /// overhead gate can measure the disabled path.
  bool telemetry = false;
  /// --telemetry-window-ms=N: sampling cadence (sim-time).
  double telemetry_window_ms = 100.0;
  /// --trace-out=PATH: write a Chrome/Perfetto trace-event JSON of the
  /// run (procedure hop spans + shard window tracks) to PATH.
  std::string trace_out;
  /// --adaptive-lookahead=0|1: per-destination adaptive windows for the
  /// sharded rows (default on; see ExperimentConfig::adaptive_lookahead).
  bool adaptive_lookahead = true;
  /// --drain-batch=N: boundary drain staging batch (0 = unstaged).
  std::size_t drain_batch = 64;
  /// --scenario=NAME: drive the bench with a named traffic-engine
  /// scenario (src/traffic/scenario.hpp) instead of its built-in
  /// workload. Empty (default) keeps the built-in workload byte-for-byte.
  /// Unknown names are a hard error (require_scenario exits 2).
  std::string scenario;
  /// --ues=N: override the bench's UE population (0 = bench default).
  /// Lets the CI scenario stage run every scenario at small scale.
  std::uint64_t ues = 0;

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions o;
    if (const char* env = std::getenv("NEUTRINO_REPORT")) o.report_path = env;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--smoke") {
        o.smoke = true;
      } else if (arg == "--no-decompose") {
        o.decompose = false;
      } else if (arg.rfind("--report=", 0) == 0) {
        o.report_path = arg.substr(9);
      } else if (arg.rfind("--threads=", 0) == 0) {
        std::string_view list = arg.substr(10);
        while (!list.empty()) {
          const std::size_t comma = list.find(',');
          const std::string tok{list.substr(0, comma)};
          if (!tok.empty()) {
            o.threads.push_back(
                static_cast<std::uint32_t>(std::strtoul(tok.c_str(),
                                                        nullptr, 10)));
          }
          if (comma == std::string_view::npos) break;
          list.remove_prefix(comma + 1);
        }
      } else if (arg.rfind("--shards=", 0) == 0) {
        o.shards = static_cast<std::uint32_t>(
            std::strtoul(std::string{arg.substr(9)}.c_str(), nullptr, 10));
      } else if (arg == "--telemetry") {
        o.telemetry = true;
      } else if (arg.rfind("--telemetry-window-ms=", 0) == 0) {
        o.telemetry_window_ms =
            std::strtod(std::string{arg.substr(22)}.c_str(), nullptr);
      } else if (arg.rfind("--trace-out=", 0) == 0) {
        o.trace_out = arg.substr(12);
      } else if (arg.rfind("--adaptive-lookahead=", 0) == 0) {
        o.adaptive_lookahead =
            std::strtoul(std::string{arg.substr(21)}.c_str(), nullptr, 10) !=
            0;
      } else if (arg.rfind("--drain-batch=", 0) == 0) {
        o.drain_batch = static_cast<std::size_t>(
            std::strtoul(std::string{arg.substr(14)}.c_str(), nullptr, 10));
      } else if (arg.rfind("--scenario=", 0) == 0) {
        o.scenario = arg.substr(11);
      } else if (arg.rfind("--ues=", 0) == 0) {
        o.ues = std::strtoull(std::string{arg.substr(6)}.c_str(), nullptr, 10);
      }
    }
    return o;
  }

  /// The sampling window --telemetry arms, or zero when it is off.
  [[nodiscard]] SimTime telemetry_window() const {
    if (!telemetry || telemetry_window_ms <= 0) return SimTime{};
    return SimTime::nanoseconds(
        static_cast<std::int64_t>(telemetry_window_ms * 1e6));
  }

  /// The shard count the sharded rows actually run with.
  [[nodiscard]] std::uint32_t effective_shards() const {
    if (shards != 0) return shards;
    std::uint32_t max_threads = 1;
    for (const std::uint32_t t : threads) max_threads = std::max(max_threads, t);
    return max_threads;
  }
};

/// Resolve --scenario= for a bench: nullptr when the flag is unset (run
/// the built-in workload), the ScenarioInfo when the name is known, and a
/// hard exit(2) listing every valid name otherwise — a typo must never
/// silently run the default workload.
inline const traffic::ScenarioInfo* require_scenario(
    const std::string& name) {
  if (name.empty()) return nullptr;
  const traffic::ScenarioInfo* info = traffic::find_scenario(name);
  if (info == nullptr) {
    std::fprintf(stderr, "%s\n",
                 traffic::unknown_scenario_error(name).c_str());
    std::exit(2);
  }
  return info;
}

/// Echo the scenario identity and generation parameters into a report's
/// config (schema v4: validate_report.py checks the shape).
inline void echo_scenario_config(obs::Json& config,
                                 const traffic::ScenarioInfo& info,
                                 const traffic::ScenarioRequest& req) {
  obs::Json& s = config["scenario"];
  s["name"] = info.name;
  s["preattach"] = info.preattach;
  s["target_pps"] = req.target_pps;
  s["duration_ms"] = req.duration.sec() * 1e3;
  s["population"] = req.population;
  s["regions"] = static_cast<std::int64_t>(req.regions);
  s["seed"] = req.seed;
}

/// Attach the offered-arrival accounting of a generated scenario to a
/// report row (schema v4): "arrivals" (total + per-class counts) and
/// "arrival_series" (windowed offered-arrival counts over the generation
/// window — the workload's shape, independent of how the system fared).
inline void attach_arrivals(obs::Json& row,
                            const traffic::GeneratedTraffic& traffic,
                            SimTime duration, std::size_t windows = 32) {
  obs::Json& arrivals = row["arrivals"];
  arrivals["total"] = traffic.total();
  obs::Json& per_class = arrivals["per_class"];
  per_class.make_object();
  for (const traffic::ClassArrivals& c : traffic.per_class) {
    per_class[c.name] = c.count;
  }
  obs::Json& series = row["arrival_series"];
  const std::int64_t window_ns = std::max<std::int64_t>(
      1, duration.ns() / static_cast<std::int64_t>(windows));
  series["window_ms"] = static_cast<double>(window_ns) / 1e6;
  std::vector<std::uint64_t> counts(windows, 0);
  for (const trace::TraceRecord& rec : traffic.records) {
    const auto w = static_cast<std::size_t>(
        std::min<std::int64_t>(static_cast<std::int64_t>(windows) - 1,
                               rec.at.ns() / window_ns));
    ++counts[w];
  }
  obs::Json& points = series["points"];
  points.make_array();
  for (std::size_t w = 0; w < windows; ++w) {
    obs::Json& p = points.push_back(obs::Json{});
    p.make_array();
    p.push_back(static_cast<double>(static_cast<std::int64_t>(w) *
                                    window_ns) /
                1e6);
    p.push_back(counts[w]);
  }
}

/// Structured experiment export (ISSUE: one code path for every bench).
///
/// Prints the legacy TSV rows unchanged (summarize_bench.py keeps
/// working) and accumulates a versioned JSON document — figure identity,
/// per-row percentile tables, the full counter registry, and the latency
/// decomposition when the experiment ran with cfg.trace_decomposition —
/// written to stdout or --report=PATH / $NEUTRINO_REPORT on finish().
class Report {
 public:
  Report(int argc, char** argv, const char* figure, const char* title,
         const char* paper_claim)
      : Report(figure, title, paper_claim, BenchOptions::parse(argc, argv)) {}

  Report(const char* figure, const char* title, const char* paper_claim,
         BenchOptions opts)
      : figure_(figure), opts_(std::move(opts)) {
    print_header(figure, title, paper_claim);
    doc_["schema"] = obs::kBenchReportSchema;
    doc_["version"] = obs::kBenchReportVersion;
    doc_["figure"] = figure;
    doc_["title"] = title;
    doc_["paper_claim"] = paper_claim;
    doc_["smoke"] = opts_.smoke;
    doc_["config"].make_object();
    doc_["rows"].make_array();
  }

  ~Report() { finish(); }
  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;

  [[nodiscard]] bool smoke() const { return opts_.smoke; }
  [[nodiscard]] bool decompose() const { return opts_.decompose; }
  [[nodiscard]] const BenchOptions& options() const { return opts_; }
  /// Bench-specific configuration block (rates, topology, policy knobs).
  obs::Json& config() { return doc_["config"]; }

  /// Print the standard TSV percentile row AND record it in the report.
  /// Pass the experiment result to attach its counters/decomposition.
  void add_pct_row(std::string_view system_name, double x,
                   const LatencyRecorder& pct,
                   const ExperimentResult* result = nullptr,
                   const char* pct_label = "pct_ms") {
    print_pct_row(figure_, system_name, x, pct);
    obs::Json& row = new_row(system_name);
    row["x"] = x;
    row[pct_label] = obs::summary_json(pct);
    if (result) attach_result(row, *result);
  }

  /// Start a custom row (benches with their own TSV printf keep it and
  /// fill the JSON here).
  obs::Json& new_row(std::string_view system_name) {
    obs::Json& row = doc_["rows"].push_back(obs::Json{});
    row["system"] = system_name;
    // Schema v2: every row declares its execution mode. attach_result
    // overwrites this for sharded-runtime results.
    row["mode"] = "single-thread";
    return row;
  }

  /// Counters, gauges, decomposition and occupancy series of a result.
  static void attach_result(obs::Json& row, const ExperimentResult& result) {
    const obs::Registry& reg = result.metrics.registry;
    row["sim_seconds"] = result.sim_seconds;
    const bool sharded = !result.shard_events.empty();
    row["mode"] = sharded ? "sharded" : "single-thread";
    if (sharded) {
      row["shards"] = result.shards;
      row["threads"] = result.threads;
      row["windows"] = result.windows;
      row["cross_shard_messages"] = result.cross_shard_messages;
      row["adaptive_extensions"] = result.adaptive_extensions;
      row["dispatches_skipped"] = result.dispatches_skipped;
      obs::Json& per_shard = row["shard_events"];
      per_shard.make_array();
      for (const std::uint64_t e : result.shard_events) per_shard.push_back(e);
    }
    row["counters"] = obs::counters_json(reg);
    obs::Json gauges = obs::gauges_json(reg);
    if (gauges.size() > 0) row["gauges"] = std::move(gauges);
    obs::Json decomp = decomposition_json(reg);
    if (!decomp.is_null()) row["decomposition_ms"] = std::move(decomp);
    obs::Json series = obs::time_series_json(reg);
    if (series.size() > 0) row["time_series"] = std::move(series);
    // Schema v3 telemetry sections — present only when the run armed them.
    obs::Json windowed = obs::windowed_series_json(reg);
    if (windowed["series"].size() > 0) row["timeseries"] = std::move(windowed);
    if (const obs::SloTracker* slo = result.metrics.slo();
        slo != nullptr && slo->any_samples()) {
      row["slo"] = slo->json();
    }
  }

  /// Wall-clock phase shares for a sharded run (schema v3 "profiler"
  /// section). Deliberately a separate call, never folded into
  /// attach_result: the numbers are machine- and thread-count-dependent,
  /// and determinism tests must be able to compare everything else.
  static void attach_profiler(obs::Json& row, const obs::PhaseProfiler& p) {
    row["profiler"] = p.json();
  }

  /// Regroup the "core.pct_decomp_ms{component=..,proc=..}" histograms as
  /// {proc: {component: {mean, p50, ...}}}; null when no tracer ran.
  static obs::Json decomposition_json(const obs::Registry& reg) {
    obs::Json decomp;
    constexpr std::string_view kPrefix = "core.pct_decomp_ms{";
    reg.for_each_histogram([&](const std::string& key,
                               const LatencyRecorder& h) {
      if (key.rfind(kPrefix, 0) != 0 || key.back() != '}') return;
      // Parse "component=X,proc=Y" (labels are sorted in the key).
      std::string_view labels{key};
      labels.remove_prefix(kPrefix.size());
      labels.remove_suffix(1);
      std::string component, proc;
      while (!labels.empty()) {
        const std::size_t comma = labels.find(',');
        const std::string_view pair = labels.substr(0, comma);
        const std::size_t eq = pair.find('=');
        if (eq != std::string_view::npos) {
          const std::string_view k = pair.substr(0, eq);
          const std::string_view v = pair.substr(eq + 1);
          if (k == "component") component = std::string{v};
          if (k == "proc") proc = std::string{v};
        }
        if (comma == std::string_view::npos) break;
        labels.remove_prefix(comma + 1);
      }
      if (component.empty() || proc.empty()) return;
      decomp[proc][component] = obs::summary_json(h);
    });
    return decomp;
  }

  /// Write the JSON document (idempotent; also run by the destructor).
  void finish() {
    if (finished_) return;
    finished_ = true;
    const std::string out = doc_.dump(2);
    if (opts_.report_path.empty()) {
      std::printf("%s", out.c_str());
      return;
    }
    if (FILE* f = std::fopen(opts_.report_path.c_str(), "w")) {
      std::fwrite(out.data(), 1, out.size(), f);
      std::fclose(f);
      std::printf("# report: %s\n", opts_.report_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write report to %s\n",
                   opts_.report_path.c_str());
    }
  }

 private:
  const char* figure_;
  BenchOptions opts_;
  obs::Json doc_;
  bool finished_ = false;
};

}  // namespace neutrino::bench
